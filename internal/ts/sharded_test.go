package ts

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/ts/replica"
)

func TestShardedCounterRejectsBadParameters(t *testing.T) {
	if _, err := NewShardedCounter(nil, 0, 64); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := NewShardedCounter(nil, -1, 64); err == nil {
		t.Error("shards=-1 accepted")
	}
	if _, err := NewShardedCounter(nil, 4, 0); err == nil {
		t.Error("blockSize=0 accepted")
	}
}

// collectConcurrent drains n indexes from c with the given parallelism
// and fails the test on any duplicate.
func collectConcurrent(t *testing.T, c Counter, workers, perWorker int) map[int64]bool {
	t.Helper()
	var mu sync.Mutex
	seen := make(map[int64]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				n, err := c.Next()
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, n)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, n := range local {
				if n < 1 {
					t.Errorf("index %d < 1", n)
				}
				if seen[n] {
					t.Errorf("index %d allocated twice", n)
				}
				seen[n] = true
			}
		}()
	}
	wg.Wait()
	return seen
}

func TestShardedCounterUniqueUnderConcurrency(t *testing.T) {
	c, err := NewShardedCounter(nil, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := collectConcurrent(t, c, 16, 500)
	if len(seen) != 16*500 {
		t.Errorf("got %d unique indexes, want %d", len(seen), 16*500)
	}
}

func TestShardedCountersShareUnderlyingSpace(t *testing.T) {
	// Two sharded frontends over one underlying counter — the multi-TS
	// deployment — must still never collide.
	underlying := &LocalCounter{}
	a, err := NewShardedCounter(underlying, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardedCounter(underlying, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := collectConcurrent(t, a, 8, 200)
	for n := range collectConcurrent(t, b, 8, 200) {
		if seen[n] {
			t.Errorf("index %d allocated by both frontends", n)
		}
	}
}

// TestShardedCounterSpreadBound checks the documented bitmap-sizing
// contract: every issued index stays within MaxSpread of the highest
// index issued so far, so a bitmap with MaxSpread slack never slides a
// fresh index out of its window.
func TestShardedCounterSpreadBound(t *testing.T) {
	c, err := NewShardedCounter(nil, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxSpread(); got != 8*16 {
		t.Fatalf("MaxSpread() = %d, want %d", got, 8*16)
	}
	var maxSeen int64
	for i := 0; i < 5000; i++ {
		n, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n <= maxSeen-c.MaxSpread() {
			t.Fatalf("allocation %d: index %d is %d behind max %d, beyond MaxSpread %d",
				i, n, maxSeen-n, maxSeen, c.MaxSpread())
		}
		if n > maxSeen {
			maxSeen = n
		}
	}
}

func TestShardedCounterOverQuorumCounter(t *testing.T) {
	cluster, err := replica.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedCounter(cluster.Counter(), 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	collectConcurrent(t, c, 8, 100)
}

func TestShardedCounterPropagatesUnderlyingErrors(t *testing.T) {
	cluster, err := replica.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedCounter(cluster.Counter(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	cluster.Kill(0)
	cluster.Kill(1)
	// The current lease still has one index; after it drains, the next
	// lease must surface ErrNoQuorum.
	if _, err := c.Next(); err != nil {
		t.Fatalf("leased index after partial crash: %v", err)
	}
	if _, err := c.Next(); !errors.Is(err, replica.ErrNoQuorum) {
		t.Errorf("err = %v, want ErrNoQuorum", err)
	}
}

// TestShardedCounterReleaseAdopt drives the clean-shutdown half of lease
// reclamation: a successor adopting the released remainders issues every
// released index exactly once before leasing any fresh block, so a
// graceful restart leaves no gap in the index space.
func TestShardedCounterReleaseAdopt(t *testing.T) {
	under := &LocalCounter{}
	first, err := NewShardedCounter(under, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 40; i++ {
		n, err := first.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[n] {
			t.Fatalf("index %d issued twice", n)
		}
		issued[n] = true
	}
	released := first.Release()
	if len(released) != 2 {
		t.Fatalf("released %d ranges, want 2 (one per shard): %+v", len(released), released)
	}
	if more := first.Release(); len(more) != 0 {
		t.Fatalf("second Release returned %+v, want nothing", more)
	}

	second, err := NewShardedCounter(under, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Adopt(released); err != nil {
		t.Fatal(err)
	}
	wantReclaimed := int64(0)
	for _, r := range released {
		wantReclaimed += r.To - r.From + 1
	}
	if got := second.Reclaimed(); got != wantReclaimed {
		t.Fatalf("Reclaimed = %d, want %d", got, wantReclaimed)
	}

	// 2 shards × 64 block = 128 indexes in the first two blocks; the
	// successor must fill every remaining hole before touching block 3.
	for i := 0; i < 128-40; i++ {
		n, err := second.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[n] {
			t.Fatalf("adopted index %d issued twice", n)
		}
		issued[n] = true
	}
	for i := int64(1); i <= 128; i++ {
		if !issued[i] {
			t.Fatalf("index %d never issued: gap across graceful restart", i)
		}
	}

	if err := second.Adopt([]IndexRange{{From: 9, To: 3}}); err == nil {
		t.Fatal("invalid adopted range accepted")
	}
}
