package ts

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedCounter allocates one-time-token indexes from per-shard leased
// blocks, so concurrent requests almost never contend on a single mutex
// (the scaling bottleneck of LocalCounter under parallel issuance).
//
// Each shard holds a lease on a disjoint block of blockSize consecutive
// indexes carved out of the space of an underlying Counter: one Next call
// on the underlying counter yields block id b, which owns indexes
// (b-1)*blockSize+1 .. b*blockSize. Because the underlying counter hands
// out unique block ids, blocks — and therefore all indexes — are unique
// across shards, across ShardedCounters sharing the underlying counter,
// and across replicated services driving a replica.QuorumCounter.
//
// Indexes are unique and strictly increasing within a shard, but NOT
// globally ordered: at any moment the issued indexes can span up to
// MaxSpread positions. The on-chain bitmap of § IV-C is a sliding
// window — redeeming a far-ahead index advances it and permanently
// rejects indexes that fall behind — so a contract served by a sharded
// counter must size its bitmap as core.SizeFor(lifetime, rate) +
// MaxSpread. The spread bound relies on the round-robin picker feeding
// all shards evenly; it also assumes this counter's traffic keeps
// flowing (a ShardedCounter that goes idle forever while others share
// the same underlying counter can hold leased-but-unissued indexes
// arbitrarily far behind).
//
// Lease abandonment: when the underlying counter is durable (e.g.
// store.Counter), a block's lease is persisted before any index from it
// is handed out. A crashed holder's blocks are therefore BURNED, never
// reclaimed — the restarted counter resumes strictly above its highest
// durable lease, so the leased-but-unissued remainder (at most
// MaxSpread indexes per crash) is permanently skipped. Burning is the
// safe side of the § IV-C at-most-once requirement: reclaiming would
// require knowing which indexes of a partially-used block reached a
// client, which a crash forgets; indexes are plentiful and duplicates
// are fatal. TestShardedCounterLeaseAbandonment pins this contract.
type ShardedCounter struct {
	underlying Counter
	blockSize  int64
	shards     []shard
	pick       atomic.Uint64
}

// shard is one lease holder. The mutex only guards lease refills and the
// handful of requests that race on the same shard; with shards ≥ GOMAXPROCS
// it is effectively uncontended.
type shard struct {
	mu   sync.Mutex
	next int64    // next index to hand out, 0 = no lease yet
	end  int64    // last index of the current lease (inclusive)
	_    [40]byte // pad to a cache line so shards don't false-share
}

// NewShardedCounter shards the index space of underlying across the given
// number of shards, leasing blockSize indexes at a time. A nil underlying
// uses a fresh LocalCounter. shards and blockSize must be positive;
// shards ≈ GOMAXPROCS and blockSize ≈ 64 work well in practice.
func NewShardedCounter(underlying Counter, shards, blockSize int) (*ShardedCounter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("ts: shard count must be positive, got %d", shards)
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("ts: block size must be positive, got %d", blockSize)
	}
	if underlying == nil {
		underlying = &LocalCounter{}
	}
	return &ShardedCounter{
		underlying: underlying,
		blockSize:  int64(blockSize),
		shards:     make([]shard, shards),
	}, nil
}

// MaxSpread returns the largest distance between the lowest
// still-unissued index held in a lease and the highest issued index:
// shards × blockSize. Add it to core.SizeFor when sizing the contract's
// one-time bitmap, so no fresh token is pushed out of the window by a
// token from a newer block.
func (c *ShardedCounter) MaxSpread() int64 {
	return int64(len(c.shards)) * c.blockSize
}

// Next implements Counter: it returns an index unique across all shards
// (and all counters sharing the same underlying counter).
func (c *ShardedCounter) Next() (int64, error) {
	sh := &c.shards[c.pick.Add(1)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.next == 0 || sh.next > sh.end {
		block, err := c.underlying.Next()
		if err != nil {
			return 0, fmt.Errorf("ts: lease index block: %w", err)
		}
		sh.next = (block-1)*c.blockSize + 1
		sh.end = block * c.blockSize
	}
	n := sh.next
	sh.next++
	return n, nil
}
