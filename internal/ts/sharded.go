package ts

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedCounter allocates one-time-token indexes from per-shard leased
// blocks, so concurrent requests almost never contend on a single mutex
// (the scaling bottleneck of LocalCounter under parallel issuance).
//
// Each shard holds a lease on a disjoint block of blockSize consecutive
// indexes carved out of the space of an underlying Counter: one Next call
// on the underlying counter yields block id b, which owns indexes
// (b-1)*blockSize+1 .. b*blockSize. Because the underlying counter hands
// out unique block ids, blocks — and therefore all indexes — are unique
// across shards, across ShardedCounters sharing the underlying counter,
// and across replicated services driving a replica.QuorumCounter.
//
// Indexes are unique and strictly increasing within a shard, but NOT
// globally ordered: at any moment the issued indexes can span up to
// MaxSpread positions. The on-chain bitmap of § IV-C is a sliding
// window — redeeming a far-ahead index advances it and permanently
// rejects indexes that fall behind — so a contract served by a sharded
// counter must size its bitmap as core.SizeFor(lifetime, rate) +
// MaxSpread. The spread bound relies on the round-robin picker feeding
// all shards evenly; it also assumes this counter's traffic keeps
// flowing (a ShardedCounter that goes idle forever while others share
// the same underlying counter can hold leased-but-unissued indexes
// arbitrarily far behind).
//
// Lease abandonment: when the underlying counter is durable (e.g.
// store.Counter), a block's lease is persisted before any index from it
// is handed out. A crashed holder's blocks are therefore BURNED, never
// reclaimed — the restarted counter resumes strictly above its highest
// durable lease, so the leased-but-unissued remainder (at most
// MaxSpread indexes per crash) is permanently skipped. Burning is the
// safe side of the § IV-C at-most-once requirement: reclaiming would
// require knowing which indexes of a partially-used block reached a
// client, which a crash forgets; indexes are plentiful and duplicates
// are fatal. TestShardedCounterLeaseAbandonment pins this contract.
type ShardedCounter struct {
	underlying Counter
	blockSize  int64
	shards     []shard
	pick       atomic.Uint64

	// freeMu guards the adopted free-list: inclusive index ranges handed
	// back by a cleanly shut-down predecessor (see Release/Adopt). Shards
	// drain the free-list before leasing fresh blocks, so reclaimed
	// indexes are reused instead of burned.
	freeMu    sync.Mutex
	free      []IndexRange
	reclaimed atomic.Int64
}

// IndexRange is an inclusive range of one-time indexes moving between
// counter incarnations during lease release and adoption.
type IndexRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// shard is one lease holder. The mutex only guards lease refills and the
// handful of requests that race on the same shard; with shards ≥ GOMAXPROCS
// it is effectively uncontended.
type shard struct {
	mu   sync.Mutex
	next int64    // next index to hand out, 0 = no lease yet
	end  int64    // last index of the current lease (inclusive)
	_    [40]byte // pad to a cache line so shards don't false-share
}

// NewShardedCounter shards the index space of underlying across the given
// number of shards, leasing blockSize indexes at a time. A nil underlying
// uses a fresh LocalCounter. shards and blockSize must be positive;
// shards ≈ GOMAXPROCS and blockSize ≈ 64 work well in practice.
func NewShardedCounter(underlying Counter, shards, blockSize int) (*ShardedCounter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("ts: shard count must be positive, got %d", shards)
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("ts: block size must be positive, got %d", blockSize)
	}
	if underlying == nil {
		underlying = &LocalCounter{}
	}
	return &ShardedCounter{
		underlying: underlying,
		blockSize:  int64(blockSize),
		shards:     make([]shard, shards),
	}, nil
}

// MaxSpread returns the largest distance between the lowest
// still-unissued index held in a lease and the highest issued index:
// shards × blockSize. Add it to core.SizeFor when sizing the contract's
// one-time bitmap, so no fresh token is pushed out of the window by a
// token from a newer block.
func (c *ShardedCounter) MaxSpread() int64 {
	return int64(len(c.shards)) * c.blockSize
}

// Next implements Counter: it returns an index unique across all shards
// (and all counters sharing the same underlying counter).
func (c *ShardedCounter) Next() (int64, error) {
	sh := &c.shards[c.pick.Add(1)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.next == 0 || sh.next > sh.end {
		if r, ok := c.popFree(); ok {
			sh.next, sh.end = r.From, r.To
		} else {
			block, err := c.underlying.Next()
			if err != nil {
				return 0, fmt.Errorf("ts: lease index block: %w", err)
			}
			sh.next = (block-1)*c.blockSize + 1
			sh.end = block * c.blockSize
		}
	}
	n := sh.next
	sh.next++
	return n, nil
}

// popFree takes one adopted range off the free-list.
func (c *ShardedCounter) popFree() (IndexRange, bool) {
	c.freeMu.Lock()
	defer c.freeMu.Unlock()
	if len(c.free) == 0 {
		return IndexRange{}, false
	}
	r := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return r, true
}

// Adopt feeds previously released index ranges into the free-list, to be
// issued before any fresh block is leased. The caller owns the safety
// argument: a range must be adopted at most once, and only after its
// release (plus this adoption, for durable setups) is recorded — see
// store.Counter.PendingReclaims for the durable handshake. Adopted
// ranges sit below the current allocation frontier, so they widen the
// issued-index spread beyond MaxSpread by the span down to the lowest
// adopted index — sliding-window bitmap sizing must budget for it.
func (c *ShardedCounter) Adopt(ranges []IndexRange) error {
	for _, r := range ranges {
		if r.From < 1 || r.To < r.From {
			return fmt.Errorf("ts: invalid adopted range [%d,%d]", r.From, r.To)
		}
	}
	c.freeMu.Lock()
	c.free = append(c.free, ranges...)
	c.freeMu.Unlock()
	for _, r := range ranges {
		c.reclaimed.Add(r.To - r.From + 1)
	}
	return nil
}

// Release drains every shard's unexhausted lease remainder (and any
// unissued adopted ranges) and returns them, leaving the counter empty-
// handed: the next Next leases a fresh block. It is the clean-shutdown
// half of lease reclamation — the caller persists the ranges (e.g.
// store.Counter.ReleaseRanges) so a successor can Adopt instead of
// burning them. Concurrent Next calls are safe but may race a remainder
// back into use, so callers should stop issuance first.
func (c *ShardedCounter) Release() []IndexRange {
	var out []IndexRange
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.next != 0 && sh.next <= sh.end {
			out = append(out, IndexRange{From: sh.next, To: sh.end})
		}
		sh.next, sh.end = 0, 0
		sh.mu.Unlock()
	}
	c.freeMu.Lock()
	out = append(out, c.free...)
	c.free = nil
	c.freeMu.Unlock()
	return out
}

// Reclaimed returns the total number of indexes this counter adopted
// from predecessors instead of burning — the ts_lease_reclaimed_total
// metric source.
func (c *ShardedCounter) Reclaimed() int64 { return c.reclaimed.Load() }
