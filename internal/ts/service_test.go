package ts

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

var (
	tsKey  = secp256k1.PrivateKeyFromSeed([]byte("ts service"))
	client = types.Address{0xc1}
	target = types.Address{0x01}
)

func fixedNow() time.Time {
	return time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC)
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Key == nil {
		cfg.Key = tsKey
	}
	if cfg.Now == nil {
		cfg.Now = fixedNow
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIssueSuperToken(t *testing.T) {
	s := newService(t, Config{})
	tk, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Type != core.SuperType || tk.OneTime() {
		t.Errorf("token = %+v", tk)
	}
	wantExpire := fixedNow().Add(DefaultTokenLifetime)
	if !tk.Expire.Equal(wantExpire) {
		t.Errorf("expire = %v, want %v", tk.Expire, wantExpire)
	}
	// The token verifies against the service address and binding.
	if err := tk.VerifySignature(s.Address(), core.Binding{Origin: client, Contract: target}); err != nil {
		t.Errorf("issued token does not verify: %v", err)
	}
}

func TestIssueValidatesRequestShape(t *testing.T) {
	s := newService(t, Config{})
	bad := []*core.Request{
		{Type: 0, Contract: target, Sender: client},
		{Type: core.SuperType, Sender: client},
		{Type: core.SuperType, Contract: target},
		{Type: core.SuperType, Contract: target, Sender: client, Method: "x"},
		{Type: core.MethodType, Contract: target, Sender: client},
		{Type: core.MethodType, Contract: target, Sender: client, Method: "m",
			Args: []core.NamedArg{{Name: "a", Value: uint64(1)}}},
		{Type: core.ArgumentType, Contract: target, Sender: client},
	}
	for i, req := range bad {
		if _, err := s.Issue(req); !errors.Is(err, core.ErrBadRequest) {
			t.Errorf("request %d: err = %v, want ErrBadRequest", i, err)
		}
	}
	_, rejected := s.Stats()
	if rejected != uint64(len(bad)) {
		t.Errorf("rejected = %d, want %d", rejected, len(bad))
	}
}

func TestIssueEnforcesRules(t *testing.T) {
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(client)))
	s := newService(t, Config{Rules: rs})

	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client}); err != nil {
		t.Errorf("whitelisted client denied: %v", err)
	}
	other := types.Address{0xee}
	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: other}); !errors.Is(err, rules.ErrDenied) {
		t.Errorf("unlisted client allowed: %v", err)
	}

	// Rules are live: the owner can update them while the service runs.
	rs.AddSender(core.ValueKey(other))
	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: other}); err != nil {
		t.Errorf("added client still denied: %v", err)
	}
}

func TestReplaceRules(t *testing.T) {
	s := newService(t, Config{})
	deny := rules.NewRuleSet()
	deny.SetSenderList(rules.NewList(rules.Whitelist)) // empty whitelist: deny all
	s.ReplaceRules(deny)
	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client}); !errors.Is(err, rules.ErrDenied) {
		t.Errorf("deny-all replacement not effective: %v", err)
	}
	s.ReplaceRules(nil) // back to allow-all
	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client}); err != nil {
		t.Errorf("allow-all replacement not effective: %v", err)
	}
}

func TestWrongContractRejected(t *testing.T) {
	s := newService(t, Config{Contract: target})
	other := types.Address{0x02}
	if _, err := s.Issue(&core.Request{Type: core.SuperType, Contract: other, Sender: client}); !errors.Is(err, ErrWrongContract) {
		t.Errorf("err = %v, want ErrWrongContract", err)
	}
}

// vetoValidator rejects requests whose first argument equals the poison
// value.
type vetoValidator struct{ poison uint64 }

func (v vetoValidator) Name() string { return "veto" }

func (v vetoValidator) Validate(req *core.Request) error {
	for _, a := range req.Args {
		if u, ok := a.Value.(uint64); ok && u == v.poison {
			return fmt.Errorf("poison value %d", v.poison)
		}
	}
	return nil
}

func TestValidatorVetoesArgumentTokens(t *testing.T) {
	s := newService(t, Config{})
	s.AddValidator(vetoValidator{poison: 13})

	good := &core.Request{Type: core.ArgumentType, Contract: target, Sender: client,
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(7)}}}
	if _, err := s.Issue(good); err != nil {
		t.Errorf("benign request denied: %v", err)
	}
	bad := &core.Request{Type: core.ArgumentType, Contract: target, Sender: client,
		Method: "act", Args: []core.NamedArg{{Name: "n", Value: uint64(13)}}}
	if _, err := s.Issue(bad); !errors.Is(err, ErrValidatorRejected) {
		t.Errorf("err = %v, want ErrValidatorRejected", err)
	}

	// Validators only gate argument tokens: a method token for the same
	// method passes (it does not commit to arguments).
	m := &core.Request{Type: core.MethodType, Contract: target, Sender: client, Method: "act"}
	if _, err := s.Issue(m); err != nil {
		t.Errorf("method token gated by validator: %v", err)
	}
}

func TestOneTimeIndexSequence(t *testing.T) {
	s := newService(t, Config{})
	for want := int64(1); want <= 5; want++ {
		tk, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client, OneTime: true})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Index != want {
			t.Errorf("index = %d, want %d (§ IV-C: counter incremented then used)", tk.Index, want)
		}
	}
}

func TestConcurrentIssuanceUniqueIndexes(t *testing.T) {
	s := newService(t, Config{})
	const n = 200
	indexes := make(chan int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client, OneTime: true})
			if err != nil {
				t.Error(err)
				return
			}
			indexes <- tk.Index
		}()
	}
	wg.Wait()
	close(indexes)
	seen := make(map[int64]bool, n)
	for idx := range indexes {
		if seen[idx] {
			t.Fatalf("index %d issued twice", idx)
		}
		seen[idx] = true
	}
	if len(seen) != n {
		t.Errorf("issued %d unique indexes, want %d", len(seen), n)
	}
}

func TestArgumentTokenBindsDeclaredPayload(t *testing.T) {
	s := newService(t, Config{})
	req := &core.Request{Type: core.ArgumentType, Contract: target, Sender: client,
		Method: "transfer", Args: []core.NamedArg{
			{Name: "to", Value: types.Address{0xdd}},
			{Name: "amount", Value: big.NewInt(42)},
		}}
	tk, err := s.Issue(req)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := req.Binding()
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.VerifySignature(s.Address(), binding); err != nil {
		t.Errorf("argument token does not verify against its own binding: %v", err)
	}
	// And not against a different payload.
	other := binding
	otherData := append([]byte(nil), binding.Data...)
	otherData[len(otherData)-1] ^= 1
	other.Data = otherData
	if err := tk.VerifySignature(s.Address(), other); err == nil {
		t.Error("argument token verified against a modified payload")
	}
}

func TestStats(t *testing.T) {
	s := newService(t, Config{})
	_, _ = s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client})
	_, _ = s.Issue(&core.Request{Type: 0})
	issued, rejected := s.Stats()
	if issued != 1 || rejected != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", issued, rejected)
	}
}

func TestNewRequiresKey(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("service without key accepted")
	}
}

// A negative configured lifetime issues already-expired tokens — the
// behavior adversarial harnesses depend on to source deterministic
// expired-token floods (see bench's e2e scenarios). Pinned here so a
// future "fix" does not silently turn the flood into valid tokens.
func TestNegativeLifetimeIssuesExpiredTokens(t *testing.T) {
	s := newService(t, Config{Lifetime: -time.Hour})
	tk, err := s.Issue(&core.Request{Type: core.SuperType, Contract: target, Sender: client})
	if err != nil {
		t.Fatal(err)
	}
	wantExpire := fixedNow().Add(-time.Hour)
	if !tk.Expire.Equal(wantExpire) {
		t.Errorf("expire = %v, want %v", tk.Expire, wantExpire)
	}
	if !tk.Expire.Before(fixedNow()) {
		t.Error("token should already be expired at issuance time")
	}
	// The signature is still genuine: only the expiry check fails.
	if err := tk.VerifySignature(s.Address(), core.Binding{Origin: client, Contract: target}); err != nil {
		t.Errorf("expired token should still carry a valid signature: %v", err)
	}
}
