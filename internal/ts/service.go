// Package ts implements the SMACS Token Service: the off-chain
// infrastructure that verifies token requests against the owner's Access
// Control Rules, runs the plugged-in runtime-verification tools, and issues
// signed tokens (§ III/IV). A Service corresponds to one SMACS-enabled
// contract and holds the signing key skTS whose address the contract's
// verifier trusts.
package ts

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/types"
)

// DefaultTokenLifetime is used when the owner does not configure one. The
// paper's Table IV analysis assumes a one-hour lifetime.
const DefaultTokenLifetime = time.Hour

// Validator is a pluggable validation-module tool (Fig. 1's "Verification
// Tools" box): given a compliant token request, it may veto issuance, e.g.
// by simulating the requested call with Hydra or an ECF checker (§ V).
type Validator interface {
	// Name identifies the tool in errors and logs.
	Name() string
	// Validate returns nil to approve the request.
	Validate(req *core.Request) error
}

// Counter allocates one-time-token indexes. The paper requires replicated
// TSes to coordinate on it (§ VII-B); see the replica subpackage.
type Counter interface {
	// Next returns a never-before-issued index ≥ 1. LocalCounter and
	// replica.QuorumCounter are strictly increasing; ShardedCounter is
	// increasing only within a shard, with a bounded spread that the
	// one-time bitmap sizing must budget for (see
	// ShardedCounter.MaxSpread).
	Next() (int64, error)
}

// LocalCounter is the single-instance counter of § IV-C: initialized to 0
// and incremented before use, so the first issued index is 1.
type LocalCounter struct {
	mu sync.Mutex
	n  int64
}

// Next implements Counter.
func (c *LocalCounter) Next() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n, nil
}

// Service errors.
var (
	// ErrValidatorRejected wraps a runtime-verification veto.
	ErrValidatorRejected = errors.New("ts: validator rejected the request")
	// ErrWrongContract is returned when a request targets a contract this
	// service does not serve.
	ErrWrongContract = errors.New("ts: request targets a different contract")
	// ErrCounterUnavailable wraps a one-time index allocation failure
	// (e.g. a quorum that cannot form, or a WAL append error).
	ErrCounterUnavailable = errors.New("ts: one-time index allocation failed")
)

// Config parameterizes a Token Service.
type Config struct {
	// Key is skTS. Required.
	Key *secp256k1.PrivateKey
	// Contract restricts the service to one contract address (zero =
	// serve any cAddr, useful for tests).
	Contract types.Address
	// Rules is the initial ACR set; nil means allow-all.
	Rules *rules.RuleSet
	// Lifetime is the token validity window (0 = DefaultTokenLifetime).
	// A negative lifetime is allowed and issues already-expired tokens:
	// adversarial harnesses (bench's e2e "adversarial" scenario) run such
	// a frontend alongside the real one to prove expired tokens are
	// rejected on-chain no matter how they were obtained.
	Lifetime time.Duration
	// Counter allocates one-time indexes (nil = a fresh LocalCounter).
	Counter Counter
	// Now injects a clock (nil = time.Now).
	Now func() time.Time
	// RequireProof demands a proof of possession on every request (the
	// client's signature over core.Request.ProofDigest), so third parties
	// cannot request tokens in another sender's name.
	RequireProof bool
	// Metrics selects the registry the service's instrumentation series
	// (ts_tokens_issued_total, ts_issue_seconds, …) are registered in
	// (nil = metrics.Default()). Services sharing a registry aggregate
	// into the same series; per-instance totals remain available via
	// Stats.
	Metrics *metrics.Registry
}

// Service issues SMACS tokens. The issuance hot path is lock-free: rules
// and validators are swapped through atomic pointers and the stats are
// atomic counters, so concurrent Issue calls never serialize on a service
// mutex (one-time index allocation contends only inside the configured
// Counter — see ShardedCounter).
type Service struct {
	key          *secp256k1.PrivateKey
	contract     types.Address
	lifetime     time.Duration
	counter      Counter
	now          func() time.Time
	requireProof bool

	rules      atomic.Pointer[rules.RuleSet]
	validators atomic.Pointer[[]Validator]
	writerMu   sync.Mutex // serializes AddValidator copy-on-write appends

	// issued/rejected are this instance's counts (the GET /v1/stats
	// view); metrics carries the registry-level series, which aggregate
	// across every Service sharing the registry.
	issued   atomic.Uint64
	rejected atomic.Uint64
	metrics  *serviceMetrics
}

// New creates a Token Service from cfg.
func New(cfg Config) (*Service, error) {
	if cfg.Key == nil {
		return nil, errors.New("ts: signing key is required")
	}
	s := &Service{
		key:          cfg.Key,
		contract:     cfg.Contract,
		lifetime:     cfg.Lifetime,
		counter:      cfg.Counter,
		now:          cfg.Now,
		requireProof: cfg.RequireProof,
	}
	rs := cfg.Rules
	if rs == nil {
		rs = rules.NewRuleSet()
	}
	s.rules.Store(rs)
	s.validators.Store(new([]Validator))
	if s.lifetime == 0 {
		s.lifetime = DefaultTokenLifetime
	}
	if s.counter == nil {
		s.counter = &LocalCounter{}
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.metrics = newServiceMetrics(metrics.Or(cfg.Metrics))
	if sp, ok := s.counter.(interface{ MaxSpread() int64 }); ok {
		s.metrics.leaseSpread.Set(sp.MaxSpread())
	}
	return s, nil
}

// Address returns the service's token-signing address — the value the
// SMACS-enabled contract's verifier is preloaded with.
func (s *Service) Address() types.Address { return s.key.Address() }

// Rules returns the live rule set; it is internally synchronized, so the
// owner can update it while the service runs.
func (s *Service) Rules() *rules.RuleSet { return s.rules.Load() }

// ReplaceRules atomically swaps in a new rule set.
func (s *Service) ReplaceRules(rs *rules.RuleSet) {
	if rs == nil {
		rs = rules.NewRuleSet()
	}
	s.rules.Store(rs)
}

// AddValidator plugs a runtime-verification tool into the validation
// module. Validators run (in registration order) for every compliant
// argument-token request. The validator list is copy-on-write, so
// registration never blocks in-flight issuance.
func (s *Service) AddValidator(v Validator) {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	old := *s.validators.Load()
	next := make([]Validator, len(old)+1)
	copy(next, old)
	next[len(old)] = v
	s.validators.Store(&next)
}

// Lifetime returns the configured token lifetime.
func (s *Service) Lifetime() time.Duration { return s.lifetime }

// Stats reports how many requests were issued and rejected. Each counter
// is monotonic, but the pair is read without a lock, so under concurrent
// issuance the two values may be offset by in-flight requests — treat
// sums and ratios across them as approximate.
func (s *Service) Stats() (issued, rejected uint64) {
	return s.issued.Load(), s.rejected.Load()
}

// Issue validates a token request and, if it complies with the ACRs and
// every validator approves, returns a freshly signed token (§ IV-B a).
// Issue is safe for concurrent use and does not serialize on the service.
func (s *Service) Issue(req *core.Request) (core.Token, error) {
	return s.issueTimed(req, false)
}

// issueTimed wraps issue with the latency and outcome accounting shared
// by the single and batch entry points. proofChecked reports that the
// caller already verified the request's proof of possession (and it
// passed), so issue can skip the duplicate ecrecover.
func (s *Service) issueTimed(req *core.Request, proofChecked bool) (core.Token, error) {
	start := time.Now()
	tk, err := s.issue(req, proofChecked)
	s.metrics.issueSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		s.rejected.Add(1)
		s.metrics.denied[denyReason(err)].Inc()
	} else {
		s.issued.Add(1)
		s.metrics.issued.Inc()
	}
	return tk, err
}

// Result pairs one issuance outcome of a batch: exactly one of Token and
// Err is meaningful.
type Result struct {
	Token core.Token
	Err   error
}

// maxBatchConcurrency bounds the goroutines one IssueBatch call spawns:
// enough to overlap validator and counter waits, small enough that
// concurrent batches do not multiply into scheduler thrash.
const maxBatchConcurrency = 32

// IssueBatch issues tokens for all requests concurrently (bounded by
// maxBatchConcurrency) and returns one Result per request, in order. A
// rejected request does not fail the batch; its slot carries the error.
// This is the amortized path behind tshttp's POST /v1/tokens endpoint.
func (s *Service) IssueBatch(reqs []*core.Request) []Result {
	s.metrics.batchSize.Observe(float64(len(reqs)))
	results := make([]Result, len(reqs))

	// Pre-verify all proofs of possession in one amortized batch
	// recovery. Requests whose proof fails here are not short-circuited:
	// issue re-derives the identical per-item error on its ordinary path,
	// so accounting and error shapes stay single-sourced. Only successes
	// skip the duplicate ecrecover.
	var proofErrs []error
	if s.requireProof {
		proofErrs = core.VerifyProofBatch(reqs)
	}

	sem := make(chan struct{}, maxBatchConcurrency)
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req *core.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			proofChecked := proofErrs != nil && proofErrs[i] == nil
			results[i].Token, results[i].Err = s.issueTimed(req, proofChecked)
		}(i, req)
	}
	wg.Wait()
	return results
}

func (s *Service) issue(req *core.Request, proofChecked bool) (core.Token, error) {
	if err := req.Validate(); err != nil {
		return core.Token{}, err
	}
	if !s.contract.IsZero() && req.Contract != s.contract {
		return core.Token{}, fmt.Errorf("%w: %s", ErrWrongContract, req.Contract)
	}
	if s.requireProof && !proofChecked {
		if err := req.VerifyProof(); err != nil {
			return core.Token{}, err
		}
	}

	ruleSet := s.rules.Load()
	validators := *s.validators.Load()

	if err := ruleSet.Check(req); err != nil {
		return core.Token{}, err
	}
	if req.Type == core.ArgumentType {
		for _, v := range validators {
			if err := v.Validate(req); err != nil {
				return core.Token{}, fmt.Errorf("%w: %s: %v", ErrValidatorRejected, v.Name(), err)
			}
		}
	}

	index := core.NotOneTime
	if req.OneTime {
		n, err := s.counter.Next()
		if err != nil {
			return core.Token{}, fmt.Errorf("%w: %v", ErrCounterUnavailable, err)
		}
		index = n
	}
	binding, err := req.Binding()
	if err != nil {
		return core.Token{}, err
	}
	expire := s.now().Add(s.lifetime)
	return core.SignToken(s.key, req.Type, expire, index, binding)
}
