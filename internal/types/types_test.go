package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHexToAddressRoundTrip(t *testing.T) {
	const in = "0x366c0ad2f0908deadbeef012345678901234abcd"
	a, err := HexToAddress(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Hex(); got != in {
		t.Errorf("Hex() = %s, want %s", got, in)
	}
}

func TestHexToAddressForms(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		wantErr bool
	}{
		{"no prefix", "366c0ad2f0908deadbeef012345678901234abcd", false},
		{"uppercase prefix", "0X366C0AD2F0908DEADBEEF012345678901234ABCD", false},
		{"short (left-padded)", "0x1", false},
		{"odd length", "0x123", false},
		{"too long", "0x" + strings.Repeat("ab", 21), true},
		{"not hex", "0xzz6c0ad2f0908deadbeef012345678901234abcd", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := HexToAddress(tt.in)
			if (err != nil) != tt.wantErr {
				t.Errorf("HexToAddress(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
		})
	}
}

func TestBytesToAddressTruncation(t *testing.T) {
	// 32-byte input keeps the low-order 20 bytes (Ethereum convention).
	in := make([]byte, 32)
	for i := range in {
		in[i] = byte(i)
	}
	a := BytesToAddress(in)
	for i := 0; i < 20; i++ {
		if a[i] != byte(i+12) {
			t.Fatalf("byte %d = %#x, want %#x", i, a[i], byte(i+12))
		}
	}
}

func TestBytesToAddressPadding(t *testing.T) {
	a := BytesToAddress([]byte{0xab})
	if a[19] != 0xab {
		t.Errorf("low byte = %#x, want 0xab", a[19])
	}
	for i := 0; i < 19; i++ {
		if a[i] != 0 {
			t.Errorf("byte %d = %#x, want 0", i, a[i])
		}
	}
}

func TestZeroChecks(t *testing.T) {
	if !ZeroAddress.IsZero() {
		t.Error("ZeroAddress.IsZero() = false")
	}
	if (Address{1}).IsZero() {
		t.Error("nonzero address reported zero")
	}
	if !(Hash{}).IsZero() {
		t.Error("zero hash reported nonzero")
	}
	if (Hash{1}).IsZero() {
		t.Error("nonzero hash reported zero")
	}
}

func TestHashRoundTrip(t *testing.T) {
	const in = "0x00000000000000000000000000000000000000000000000000000000000004d2"
	h, err := HexToHash(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hex() != in {
		t.Errorf("Hex() = %s, want %s", h.Hex(), in)
	}
}

func TestBytesCopiesAreIndependent(t *testing.T) {
	a := Address{1, 2, 3}
	b := a.Bytes()
	b[0] = 0xff
	if a[0] != 1 {
		t.Error("Address.Bytes aliases the underlying array")
	}
	h := Hash{4, 5, 6}
	hb := h.Bytes()
	hb[0] = 0xff
	if h[0] != 4 {
		t.Error("Hash.Bytes aliases the underlying array")
	}
}

func TestQuickAddressRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := BytesToAddress(raw[:])
		back, err := HexToAddress(a.Hex())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
