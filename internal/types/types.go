// Package types provides the small shared value types of the simulated
// Ethereum substrate: 20-byte account addresses, 32-byte hashes, and the
// hex encoding helpers used across the repository.
package types

import (
	"encoding/hex"
	"fmt"
	"strings"
)

const (
	// AddressLength is the byte length of an Ethereum account address.
	AddressLength = 20
	// HashLength is the byte length of a Keccak-256 digest.
	HashLength = 32
)

// Address is a 20-byte Ethereum account or contract address.
type Address [AddressLength]byte

// Hash is a 32-byte Keccak-256 digest.
type Hash [HashLength]byte

// ZeroAddress is the all-zero address. It is used as the "no address"
// sentinel (e.g., the recipient of a contract-creation transaction).
var ZeroAddress Address

// BytesToAddress converts b to an Address, left-padding or truncating on the
// left so that the low-order 20 bytes of b are kept (Ethereum convention).
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// BytesToHash converts b to a Hash, left-padding or truncating on the left.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// HexToAddress parses a hex string (with or without a 0x prefix) into an
// Address. It returns an error if the string is not valid hex or is longer
// than 20 bytes.
func HexToAddress(s string) (Address, error) {
	b, err := parseHex(s, AddressLength)
	if err != nil {
		return Address{}, fmt.Errorf("address %q: %w", s, err)
	}
	return BytesToAddress(b), nil
}

// MustHexToAddress is like HexToAddress but panics on error. It is intended
// for tests and package-level constants only.
func MustHexToAddress(s string) Address {
	a, err := HexToAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// HexToHash parses a hex string (with or without a 0x prefix) into a Hash.
func HexToHash(s string) (Hash, error) {
	b, err := parseHex(s, HashLength)
	if err != nil {
		return Hash{}, fmt.Errorf("hash %q: %w", s, err)
	}
	return BytesToHash(b), nil
}

func parseHex(s string, maxLen int) ([]byte, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(b) > maxLen {
		return nil, fmt.Errorf("value is %d bytes, want at most %d", len(b), maxLen)
	}
	return b, nil
}

// Bytes returns the address as a fresh byte slice.
func (a Address) Bytes() []byte {
	b := make([]byte, AddressLength)
	copy(b, a[:])
	return b
}

// Hex returns the 0x-prefixed lowercase hex encoding of the address.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether the address is the all-zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Bytes returns the hash as a fresh byte slice.
func (h Hash) Bytes() []byte {
	b := make([]byte, HashLength)
	copy(b, h[:])
	return b
}

// Hex returns the 0x-prefixed lowercase hex encoding of the hash.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether the hash is all zero.
func (h Hash) IsZero() bool { return h == Hash{} }
