package metrics

import (
	"encoding/json"
	"sync"
	"time"
)

// Span is one named stage of a traced operation's life — "tokens"
// (wallet → TS round-trip), "queue" (waiting for a batch slot), "commit"
// (inside Chain.ApplyBatch), and so on.
type Span struct {
	// Name identifies the stage.
	Name string `json:"name"`
	// StartMicros is the span's start as Unix microseconds.
	StartMicros int64 `json:"startMicros"`
	// DurMicros is the span's length in microseconds.
	DurMicros int64 `json:"durMicros"`
}

// Trace is the reconstructed life of one operation: every stage span
// recorded under its request ID, in recording order.
type Trace struct {
	// ID is the request ID that flowed wallet → TS → chain.
	ID string `json:"id"`
	// Spans are the recorded stages.
	Spans []Span `json:"spans"`
}

// Tracer collects per-request stage spans keyed by request ID, bounded
// to a fixed number of traces so tracing a million-op run samples the
// first N operations instead of holding them all. A nil *Tracer is
// valid and records nothing, so call sites need no guards.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	traces map[string]*Trace
	order  []string
	// dropped counts spans that arrived for new IDs after the cap.
	dropped uint64
}

// DefaultTraceCap bounds a Tracer when NewTracer is given 0.
const DefaultTraceCap = 256

// NewTracer creates a tracer holding at most capacity traces
// (0 = DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity, traces: make(map[string]*Trace, capacity)}
}

// Span records one stage span under the request ID. Spans for IDs beyond
// the tracer's capacity are counted as dropped; spans for already-known
// IDs always append, so a sampled operation's trace stays complete.
func (t *Tracer) Span(id, name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		if len(t.order) >= t.cap {
			t.dropped++
			return
		}
		tr = &Trace{ID: id}
		t.traces[id] = tr
		t.order = append(t.order, id)
	}
	tr.Spans = append(tr.Spans, Span{
		Name:        name,
		StartMicros: start.UnixMicro(),
		DurMicros:   end.Sub(start).Microseconds(),
	})
}

// Len returns the number of traces held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// Dropped returns how many spans for over-capacity IDs were discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Traces returns the collected traces in first-seen order. The returned
// slice is a copy; the Trace pointers are live (do not mutate them while
// recording continues).
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.traces[id])
	}
	return out
}

// traceDump is the JSON envelope DumpJSON writes.
type traceDump struct {
	Traces  []*Trace `json:"traces"`
	Dropped uint64   `json:"droppedSpans"`
}

// DumpJSON renders every trace as indented JSON — the artifact the e2e
// harness writes so one guarded transaction's life (token round-trip,
// batch queueing, chain commit) can be reconstructed offline.
func (t *Tracer) DumpJSON() ([]byte, error) {
	if t == nil {
		return json.MarshalIndent(traceDump{}, "", "  ")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.traces[id])
	}
	return json.MarshalIndent(traceDump{Traces: out, Dropped: t.dropped}, "", "  ")
}
