package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds for latencies in
// seconds: 50µs to 10s, roughly ×2–2.5 per step — wide enough to span a
// cache-hit token issue (tens of µs) and a quorum-replicated durable
// commit (tens of ms) in the same series.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets are the default histogram bounds for unitless sizes
// (batch lengths, fsync group sizes): powers of two from 1 to 1024.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket histogram. Observe is lock-free: one
// binary search over the (immutable) bounds plus four atomic updates, no
// allocation — cheap enough for every request on the issuance hot path.
// Quantiles are reconstructed from the bucket counts, so p50/p95/p99 are
// resolved to bucket granularity (and capped at the true observed max).
type Histogram struct {
	bounds []float64       // sorted upper bounds; one overflow bucket past the last
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (nil = DefLatencyBuckets). Most callers want Registry.Histogram
// instead, which names and registers the series.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering: per-bucket counts (non-cumulative), total count, sum, max.
// Under concurrent observation the fields may be offset by in-flight
// Observes; treat cross-field arithmetic as approximate.
type HistogramSnapshot struct {
	Buckets []float64 // upper bounds
	Counts  []uint64  // per-bucket (non-cumulative); the overflow bucket is folded into Count
	Count   uint64
	Sum     float64
	Max     float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.bounds,
		Counts:  make([]uint64, len(h.bounds)),
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Max:     h.Max(),
	}
	for i := range h.bounds {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// it returns the upper bound of the bucket containing the target rank,
// capped at the observed max (so a single observation reports itself,
// and the overflow bucket reports the max rather than +Inf). Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	maxv := h.Max()
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			if h.bounds[i] > maxv {
				return maxv
			}
			return h.bounds[i]
		}
	}
	// Target rank lives in the overflow bucket: the max is the best bound.
	return maxv
}
