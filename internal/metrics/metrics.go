// Package metrics is the dependency-free instrumentation layer of the
// SMACS reproduction: atomic counters and gauges, fixed-bucket latency
// histograms with percentile extraction, and a named registry that
// renders the Prometheus text exposition format. The paper's Token
// Service sits in the transaction hot path (§ IV), so every primitive
// here is allocation-conscious — an Observe or Inc on the hot path is a
// handful of atomic operations, never a lock around a map.
//
// Metric families are get-or-create: asking a registry twice for the
// same name (and label set) returns the same instance, so independent
// subsystems — the Token Service, the HTTP frontend, the chain, the WAL
// — can each grab their series without coordinating registration order.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use; Inc/Add are single atomic adds.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, spreads,
// sizes). All methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates the metric families a registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance inside a family: exactly one of the
// typed fields is set, matching the family's kind.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() uint64
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // key = canonical label signature
	order  []string           // registration order, for stable rendering
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format. The zero value is not usable; use NewRegistry
// or the package Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry most callers share; a
// subsystem that wants isolation (the e2e harness runs one registry per
// scenario) passes its own.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the process-wide default when r is nil — the idiom
// every Config-embedded *Registry field resolves through.
func Or(r *Registry) *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// labelKey builds the canonical signature of a label set (sorted by
// name), so the same series is found regardless of argument order.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// familyFor returns the named family, creating it on first use and
// panicking on a kind mismatch — re-registering a name as a different
// type is a programming error no caller can meaningfully handle.
func (r *Registry) familyFor(name, help string, k kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, f.kind, k))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// seriesFor returns the family's series for the label set, creating it
// with mk on first use.
func (f *family) seriesFor(labels []Label, mk func() *series) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = append([]Label(nil), labels...)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns (creating on first use) the named counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, kindCounter, nil)
	return f.seriesFor(labels, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns (creating on first use) the named gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil)
	return f.seriesFor(labels, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram returns (creating on first use) the named histogram series.
// buckets are the upper bounds (see DefLatencyBuckets); nil selects
// DefLatencyBuckets. The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.familyFor(name, help, kindHistogram, buckets)
	return f.seriesFor(labels, func() *series { return &series{h: NewHistogram(f.buckets)} }).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters (cache hit/miss
// stats) that should not be counted twice. The first registration for a
// given name and label set wins; later ones are ignored.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	f := r.familyFor(name, help, kindCounterFunc, nil)
	f.seriesFor(labels, func() *series { return &series{fn: fn} })
}

// snapshotFamilies copies the family list under the registry lock so
// rendering never holds it across user callbacks.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (text/plain; version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	snap := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		snap = append(snap, f.series[key])
	}
	f.mu.Unlock()
	if len(snap) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, s := range snap {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

// renderLabels formats a label set (plus an optional extra label, used
// for histogram le) as {a="x",b="y"}, or "" when empty.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (f *family) writeSeries(w io.Writer, s *series) error {
	lbl := renderLabels(s.labels)
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, s.c.Value())
		return err
	case kindCounterFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, s.fn())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, s.g.Value())
		return err
	case kindHistogram:
		snap := s.h.Snapshot()
		cum := uint64(0)
		for i, bound := range snap.Buckets {
			cum += snap.Counts[i]
			le := renderLabels(s.labels, L("le", formatFloat(bound)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		inf := renderLabels(s.labels, L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, inf, snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, lbl, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, lbl, snap.Count)
		return err
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
