package metrics

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not zeroed: count=%d sum=%g max=%g", h.Count(), h.Sum(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, v)
		}
	}
}

// A single sample must report itself at every quantile: the bucket bound
// is capped at the observed max.
func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.004)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if v := h.Quantile(q); v != 0.004 {
			t.Errorf("Quantile(%g) = %g, want the observed 0.004", q, v)
		}
	}
	if h.Max() != 0.004 {
		t.Errorf("Max = %g, want 0.004", h.Max())
	}
}

// Values past the last bound land in the overflow bucket; quantiles that
// resolve there must report the observed max, never +Inf.
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(5)
	h.Observe(7)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if got := snap.Counts[0] + snap.Counts[1]; got != 1 {
		t.Errorf("bounded buckets hold %d, want 1", got)
	}
	if v := h.Quantile(0.99); v != 7 {
		t.Errorf("p99 in overflow bucket = %g, want the max 7", v)
	}
	if v := h.Quantile(0.3); v != 0.001 {
		t.Errorf("p30 = %g, want first bucket bound 0.001", v)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// A value exactly on a bound counts toward that bucket (le semantics).
	h.Observe(2)
	snap := h.Snapshot()
	if snap.Counts[1] != 1 {
		t.Errorf("value on the bound landed in buckets %v, want index 1", snap.Counts)
	}
	h.Observe(1)
	h.Observe(4)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %g, want 4", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %g, want first nonempty bucket bound 1", got)
	}
}

func TestHistogramQuantileDistribution(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + 0.5) // 0.5 .. 9.5 uniform
	}
	p50 := h.Quantile(0.50)
	if p50 < 4 || p50 > 6 {
		t.Errorf("p50 of uniform 0.5..9.5 = %g, want ≈5", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 9 || p99 > 10 {
		t.Errorf("p99 = %g, want ≈10", p99)
	}
	if h.Quantile(0.5) > h.Quantile(0.95) {
		t.Error("quantiles are not monotonic")
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("duration not recorded")
	}
	if got := h.Sum(); got < 0.0029 || got > 0.0031 {
		t.Errorf("sum = %g, want 0.003", got)
	}
}
