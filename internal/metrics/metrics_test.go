package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrent increments across counters, gauges, and histograms must
// lose nothing (run under -race in CI).
func TestConcurrentIncrementCorrectness(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_in_flight", "in flight")
	h := reg.Histogram("test_latency_seconds", "latency", nil)

	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost increments: got %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge should balance to 0, got %d", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram lost observations: got %d, want %d", got, goroutines*perG)
	}
	wantSum := float64(goroutines*perG) * 0.001
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum drifted: got %g, want ≈%g", got, wantSum)
	}
}

// Get-or-create must hand back the same instance for the same name and
// label set, regardless of label order, and concurrent first access must
// not mint duplicates.
func TestGetOrCreateIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "", L("x", "1"), L("y", "2"))
	b := reg.Counter("dup_total", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := reg.Counter("dup_total", "", L("x", "other")); c == a {
		t.Error("different label values returned the same counter")
	}

	var wg sync.WaitGroup
	got := make([]*Counter, 32)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = reg.Counter("race_total", "")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent get-or-create minted distinct counters")
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("clash_total", "")
}

// Golden test for the Prometheus text exposition format: series lines,
// HELP/TYPE headers, histogram _bucket/_sum/_count with cumulative
// counts and a +Inf bucket.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ts_tokens_issued_total", "tokens issued").Add(3)
	reg.Counter("ts_tokens_denied_total", "tokens denied", L("reason", "rule_denied")).Add(2)
	reg.Gauge("http_in_flight_requests", "in-flight").Set(1)
	h := reg.Histogram("rt_seconds", "round trip", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ts_tokens_issued_total tokens issued
# TYPE ts_tokens_issued_total counter
ts_tokens_issued_total 3
# HELP ts_tokens_denied_total tokens denied
# TYPE ts_tokens_denied_total counter
ts_tokens_denied_total{reason="rule_denied"} 2
# HELP http_in_flight_requests in-flight
# TYPE http_in_flight_requests gauge
http_in_flight_requests 1
# HELP rt_seconds round trip
# TYPE rt_seconds histogram
rt_seconds_bucket{le="0.1"} 2
rt_seconds_bucket{le="1"} 3
rt_seconds_bucket{le="+Inf"} 4
rt_seconds_sum 3.6
rt_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCounterFuncReadsAtScrape(t *testing.T) {
	reg := NewRegistry()
	v := uint64(0)
	reg.CounterFunc("cache_hits_total", "hits", func() uint64 { return v })
	v = 42
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cache_hits_total 42") {
		t.Errorf("func counter not read at scrape time:\n%s", b.String())
	}
}

func TestTracerRecordsAndBounds(t *testing.T) {
	tr := NewTracer(2)
	t0 := time.Unix(1000, 0)
	tr.Span("op1", "tokens", t0, t0.Add(2*time.Millisecond))
	tr.Span("op1", "commit", t0.Add(2*time.Millisecond), t0.Add(3*time.Millisecond))
	tr.Span("op2", "tokens", t0, t0.Add(time.Millisecond))
	tr.Span("op3", "tokens", t0, t0.Add(time.Millisecond)) // over capacity
	tr.Span("op1", "extra", t0, t0.Add(time.Millisecond))  // known ID still appends

	if tr.Len() != 2 {
		t.Fatalf("tracer held %d traces, want 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	traces := tr.Traces()
	if traces[0].ID != "op1" || len(traces[0].Spans) != 3 {
		t.Errorf("op1 trace = %+v", traces[0])
	}
	if traces[0].Spans[0].DurMicros != 2000 {
		t.Errorf("span duration = %d µs, want 2000", traces[0].Spans[0].DurMicros)
	}
	dump, err := tr.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op1"`, `"tokens"`, `"droppedSpans": 1`} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("trace dump missing %s:\n%s", want, dump)
		}
	}

	var nilTracer *Tracer
	nilTracer.Span("x", "y", t0, t0) // must not panic
	if nilTracer.Len() != 0 || nilTracer.Traces() != nil {
		t.Error("nil tracer should be inert")
	}
}
