// Package keccak implements the legacy Keccak-256 hash function as used by
// Ethereum. It predates the FIPS-202 SHA3 standard and uses the original
// Keccak padding (domain-separation byte 0x01) rather than SHA3's 0x06, so
// its digests match Ethereum's KECCAK256 opcode, method-selector derivation,
// and address derivation.
package keccak

import "math/bits"

const (
	// rate is the sponge rate in bytes for a 256-bit capacity (1088 bits).
	rate = 136
	// Size is the digest size in bytes.
	Size = 32
)

// roundConstants are the iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotations[x][y] is the rho-step rotation for lane (x, y).
var rotations = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// keccakF1600 applies the 24-round Keccak-f[1600] permutation in place.
// Lanes are indexed a[x+5*y].
func keccakF1600(a *[25]uint64) {
	var c, d [5]uint64
	var b [25]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// Rho and pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], int(rotations[x][y]))
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// Hasher is an incremental Keccak-256 hasher. The zero value is ready to
// use. It implements the write/sum subset of hash.Hash that the rest of the
// repository needs.
type Hasher struct {
	state [25]uint64
	buf   [rate]byte
	n     int
}

// New returns a new Keccak-256 hasher.
func New() *Hasher { return &Hasher{} }

// Reset restores the hasher to its initial state.
func (h *Hasher) Reset() {
	h.state = [25]uint64{}
	h.n = 0
}

// Write absorbs p into the sponge. It never returns an error.
func (h *Hasher) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := copy(h.buf[h.n:], p)
		h.n += n
		p = p[n:]
		if h.n == rate {
			h.absorb()
		}
	}
	return total, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.state[i] ^= le64(h.buf[8*i:])
	}
	keccakF1600(&h.state)
	h.n = 0
}

// Sum256 finalizes the hash and returns the 32-byte digest. The hasher must
// not be written to afterwards (call Reset to reuse it).
func (h *Hasher) Sum256() [Size]byte {
	// Legacy Keccak padding: 0x01 ... 0x80 within the rate block.
	for i := h.n; i < rate; i++ {
		h.buf[i] = 0
	}
	h.buf[h.n] = 0x01
	h.buf[rate-1] |= 0x80
	h.n = rate
	h.absorb()

	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[8*i:], h.state[i])
	}
	return out
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var h Hasher
	h.Write(data) //nolint:errcheck // never fails
	return h.Sum256()
}

// Sum256Concat returns the Keccak-256 digest of the concatenation of the
// given byte slices without materializing the concatenation.
func Sum256Concat(parts ...[]byte) [Size]byte {
	var h Hasher
	for _, p := range parts {
		h.Write(p) //nolint:errcheck // never fails
	}
	return h.Sum256()
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
