package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestSum256KnownVectors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{"fox", "The quick brown fox jumps over the lazy dog", "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
		{"hello", "hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"},
		{"transfer selector", "transfer(address,uint256)", "a9059cbb2ab09eb219583f4a59a5d0623ade346d962bcd4e46b11da047c9049b"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Sum256([]byte(tt.in))
			if hex.EncodeToString(got[:]) != tt.want {
				t.Errorf("Sum256(%q) = %x, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	want := Sum256(data)

	for _, chunk := range []int{1, 7, 135, 136, 137, 500} {
		h := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := h.Write(data[off:end]); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if got := h.Sum256(); got != want {
			t.Errorf("chunk size %d: digest mismatch", chunk)
		}
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Write([]byte("garbage"))
	h.Sum256()
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum256()
	want := Sum256([]byte("abc"))
	if got != want {
		t.Errorf("Reset did not restore initial state")
	}
}

func TestSum256ConcatEquivalence(t *testing.T) {
	f := func(a, b, c []byte) bool {
		joined := Sum256(bytes.Join([][]byte{a, b, c}, nil))
		return Sum256Concat(a, b, c) == joined
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockBoundaryLengths(t *testing.T) {
	// Hash inputs straddling the 136-byte rate boundary; the one-shot and
	// incremental paths must agree and digests must be distinct for
	// distinct inputs.
	seen := make(map[[32]byte]int)
	for _, n := range []int{0, 1, 135, 136, 137, 271, 272, 273, 1000} {
		data := bytes.Repeat([]byte{0x5a}, n)
		d := Sum256(data)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between lengths %d and %d", prev, n)
		}
		seen[d] = n
	}
}

func BenchmarkSum256_32B(b *testing.B) { benchSum(b, 32) }
func BenchmarkSum256_1K(b *testing.B)  { benchSum(b, 1024) }

func benchSum(b *testing.B, n int) {
	data := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
