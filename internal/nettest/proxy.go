// Package nettest provides a fault-injecting TCP proxy for exercising
// distributed-systems failure modes against real network stacks. The
// chaos e2e scenarios and the networked-replica tests place one Proxy in
// front of each Token Service replica and then drop, delay, partition,
// or reset its traffic mid-run — faults the in-process replica model
// (and the bench -rtt knob) could only pretend to inject.
//
// Fault semantics, per proxy:
//
//   - Drop: new connections are accepted and immediately closed (the
//     client sees a reset/EOF before any byte flows). Established
//     connections are unaffected.
//   - Delay: every forwarded chunk, in both directions, is held for the
//     configured duration before being written on.
//   - Partition: a blackhole. New connections are accepted but no byte is
//     ever forwarded in either direction; established connections stop
//     forwarding too. Nothing is closed — peers block until their own
//     timeouts fire, exactly like a switch silently eating packets.
//   - Reset: every established connection is torn down immediately, even
//     mid-write, surfacing as ECONNRESET/EOF on both sides.
//
// All knobs are safe for concurrent use and take effect without
// restarting the proxy; Heal clears every standing fault at once.
package nettest

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections from its own loopback listener to a
// fixed target address, injecting the currently configured faults.
type Proxy struct {
	target   string
	listener net.Listener

	dropNew   atomic.Bool
	partition atomic.Bool
	delay     atomic.Int64 // nanoseconds added per forwarded chunk

	mu     sync.Mutex
	conns  map[*proxyConn]struct{}
	closed bool

	// unpartitioned is closed and re-made around partitions so blocked
	// copy loops can wake up when the network heals.
	unpartitioned chan struct{}

	accepted  atomic.Uint64
	dropped   atomic.Uint64
	resets    atomic.Uint64
	forwarded atomic.Uint64 // bytes, both directions
	wg        sync.WaitGroup
}

// proxyConn is one client↔target connection pair.
type proxyConn struct {
	client net.Conn
	server net.Conn
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target
// (a host:port address). Close releases the listener and every
// connection.
func NewProxy(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target:        target,
		listener:      l,
		conns:         make(map[*proxyConn]struct{}),
		unpartitioned: make(chan struct{}),
	}
	close(p.unpartitioned) // healthy at birth
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port) — what clients
// should dial instead of the target.
func (p *Proxy) Addr() string { return p.listener.Addr().String() }

// URL returns the proxy address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetDrop makes the proxy close (on) or admit (off) new connections.
func (p *Proxy) SetDrop(on bool) { p.dropNew.Store(on) }

// SetDelay holds every forwarded chunk for d before writing it on
// (0 restores immediate forwarding).
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SetPartition starts (on) or heals (off) a blackhole: while partitioned
// no byte is forwarded in either direction and nothing is closed.
func (p *Proxy) SetPartition(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	was := p.partition.Swap(on)
	switch {
	case on && !was:
		p.unpartitioned = make(chan struct{})
	case !on && was:
		close(p.unpartitioned)
	}
}

// healedChan returns the channel closed once the current partition (if
// any) heals.
func (p *Proxy) healedChan() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unpartitioned
}

// ResetAll tears down every established connection immediately — the
// mid-write reset fault. New connections are still admitted (combine
// with SetDrop to keep them out).
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.resets.Add(1)
		c.close()
	}
}

// Heal clears every standing fault: drop, delay, and partition.
func (p *Proxy) Heal() {
	p.SetDrop(false)
	p.SetDelay(0)
	p.SetPartition(false)
}

// Stats reports connections accepted, connections refused by the drop
// fault, connections torn down by ResetAll, and total bytes forwarded.
func (p *Proxy) Stats() (accepted, dropped, resets, forwardedBytes uint64) {
	return p.accepted.Load(), p.dropped.Load(), p.resets.Load(), p.forwarded.Load()
}

// Close shuts the listener and every connection down and waits for the
// forwarding goroutines to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.listener.Close()
	for _, c := range conns {
		c.close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if p.dropNew.Load() {
			p.dropped.Add(1)
			_ = client.Close()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		c := &proxyConn{client: client, server: server}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.close()
			return
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(2)
		go p.pipe(c, client, server)
		go p.pipe(c, server, client)
	}
}

// pipe copies src→dst through the fault filters. When src half-closes
// (EOF), the write side of dst is closed but the other direction keeps
// flowing — preserving half-open connection semantics. Any error tears
// the pair down.
func (p *Proxy) pipe(c *proxyConn, src, dst net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if !p.throttle() {
				break // proxy closed while partitioned
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
			p.forwarded.Add(uint64(n))
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				// Half-close: propagate the FIN, keep the reverse path.
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					_ = cw.CloseWrite()
					return
				}
			}
			break
		}
	}
	p.drop(c)
}

// throttle applies the delay and partition faults to one chunk. It
// returns false when the proxy shut down while the chunk was being held.
func (p *Proxy) throttle() bool {
	if d := time.Duration(p.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	for p.partition.Load() {
		healed := p.healedChan()
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return false
		}
		select {
		case <-healed:
		case <-time.After(50 * time.Millisecond):
			// Re-check closed so a proxy shut down mid-partition does not
			// leak this goroutine.
		}
	}
	return true
}

// drop closes and forgets a connection pair.
func (p *Proxy) drop(c *proxyConn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.close()
}

func (c *proxyConn) close() {
	// SetLinger(0) turns the close into a hard RST, so a peer blocked in
	// a write sees ECONNRESET immediately — the mid-write reset fault —
	// instead of buffering into a half-dead socket.
	if tc, ok := c.client.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	if tc, ok := c.server.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.client.Close()
	_ = c.server.Close()
}
