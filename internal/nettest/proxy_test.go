package nettest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startEcho runs a loopback echo server that mirrors every received byte
// back to the sender until the peer half-closes, then closes its side.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}(conn)
		}
	}()
	return l.Addr().String()
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := NewProxy(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// echoRoundTrip writes one line through conn and reads the echo back.
func echoRoundTrip(conn net.Conn, line string) (string, error) {
	if _, err := io.WriteString(conn, line+"\n"); err != nil {
		return "", err
	}
	return bufio.NewReader(conn).ReadString('\n')
}

func TestProxyForwardsCleanTraffic(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := echoRoundTrip(conn, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello\n" {
		t.Fatalf("echoed %q, want %q", got, "hello\n")
	}
	accepted, dropped, resets, forwarded := p.Stats()
	if accepted != 1 || dropped != 0 || resets != 0 {
		t.Errorf("stats accepted=%d dropped=%d resets=%d, want 1/0/0", accepted, dropped, resets)
	}
	if forwarded < 2*uint64(len("hello\n")) {
		t.Errorf("forwarded %d bytes, want ≥ %d", forwarded, 2*len("hello\n"))
	}
}

// Drop must refuse new connections (close before any byte) while leaving
// established ones untouched; lifting it readmits connections.
func TestProxyDropSemantics(t *testing.T) {
	p := startProxy(t, startEcho(t))
	live, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, err := echoRoundTrip(live, "pre"); err != nil {
		t.Fatal(err)
	}

	p.SetDrop(true)
	refused, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// The TCP handshake itself may succeed before the proxy closes the
		// socket; the first round-trip must fail either way.
		defer refused.Close()
		_ = refused.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := echoRoundTrip(refused, "dropped"); err == nil {
			t.Fatal("round-trip through a dropped connection succeeded")
		}
	}
	// The established connection keeps working through the fault.
	if _, err := echoRoundTrip(live, "mid"); err != nil {
		t.Fatalf("established connection broken by drop fault: %v", err)
	}

	p.SetDrop(false)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := echoRoundTrip(conn, "post"); err != nil {
		t.Fatalf("connection after heal failed: %v", err)
	}
	if _, dropped, _, _ := p.Stats(); dropped == 0 {
		t.Error("drop fault recorded no dropped connections")
	}
}

// Delay must hold forwarded chunks for at least the configured duration
// in each direction.
func TestProxyDelaySemantics(t *testing.T) {
	const delay = 30 * time.Millisecond
	p := startProxy(t, startEcho(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := echoRoundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}

	p.SetDelay(delay)
	start := time.Now()
	if _, err := echoRoundTrip(conn, "slow"); err != nil {
		t.Fatal(err)
	}
	// Request and echo both cross the proxy: two delayed chunks minimum.
	if elapsed := time.Since(start); elapsed < 2*delay {
		t.Errorf("delayed round-trip took %v, want ≥ %v", elapsed, 2*delay)
	}

	p.SetDelay(0)
	start = time.Now()
	if _, err := echoRoundTrip(conn, "fast"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 2*delay {
		t.Errorf("healed round-trip still took %v", elapsed)
	}
}

// Partition must blackhole both directions without closing anything, and
// healing must release the blocked bytes.
func TestProxyPartitionSemantics(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := echoRoundTrip(conn, "pre"); err != nil {
		t.Fatal(err)
	}

	p.SetPartition(true)
	if _, err := io.WriteString(conn, "lost?\n"); err != nil {
		t.Fatalf("write into a partition must buffer, not fail: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	var buf [64]byte
	if n, err := conn.Read(buf[:]); err == nil || n > 0 {
		t.Fatalf("read %d bytes through a partition (err=%v), want timeout", n, err)
	} else {
		// Only a timeout is acceptable; a reset/EOF would mean the
		// partition closed the connection, which real partitions never do.
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("partitioned read failed with %v, want timeout", err)
		}
	}

	// New connections during the partition connect but carry nothing.
	during, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer during.Close()
	_ = during.SetDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := echoRoundTrip(during, "void"); err == nil {
		t.Fatal("round-trip through a partition succeeded")
	}

	// Heal: the buffered bytes flow and the connection works again.
	p.SetPartition(false)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if got != "lost?\n" {
		t.Fatalf("post-heal read %q, want %q", got, "lost?\n")
	}
}

// ResetAll must tear down established connections even while a transfer
// is in flight: one side blocked mid-write sees a hard error, not a
// clean EOF after a complete payload.
func TestProxyMidWriteReset(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := echoRoundTrip(conn, "pre"); err != nil {
		t.Fatal(err)
	}

	// Slow the proxy so the bulk write is still streaming when the reset
	// lands.
	p.SetDelay(5 * time.Millisecond)
	payload := bytes.Repeat([]byte("x"), 1<<20)
	writeErr := make(chan error, 1)
	go func() {
		_, err := conn.Write(payload)
		if err == nil {
			// The kernel may buffer the whole payload, and echoed bytes that
			// crossed the proxy before the reset landed may already sit in
			// the client's receive buffer; drain until the teardown surfaces.
			buf := make([]byte, 32<<10)
			for err == nil {
				_, err = conn.Read(buf)
			}
		}
		writeErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.ResetAll()

	select {
	case err := <-writeErr:
		if err == nil {
			t.Fatal("transfer survived ResetAll")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reset connection still blocked after 10s")
	}
	if _, _, resets, _ := p.Stats(); resets == 0 {
		t.Error("ResetAll recorded no resets")
	}
}

// A client half-close (CloseWrite) must propagate as EOF to the server
// while the server→client direction keeps delivering data — the proxy
// may not collapse a half-open connection into a full close.
func TestProxyHalfOpenConnection(t *testing.T) {
	// A server that reads everything first, then answers after EOF — it
	// only works if the reverse path survives the client's half-close.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		data, _ := io.ReadAll(conn) // returns at client FIN
		_, _ = conn.Write([]byte(strings.ToUpper(string(data))))
	}()

	p := startProxy(t, l.Addr().String())
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "half-open"); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read after half-close: %v", err)
	}
	if string(reply) != "HALF-OPEN" {
		t.Fatalf("reply %q, want %q", reply, "HALF-OPEN")
	}
}

// Concurrent connections under churning faults must neither deadlock nor
// trip the race detector; after Heal the proxy still serves cleanly.
func TestProxyConcurrentFaultChurn(t *testing.T) {
	p := startProxy(t, startEcho(t))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Fault churner: cycles every fault while clients hammer the proxy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				p.SetDelay(time.Millisecond)
			case 1:
				p.SetPartition(true)
				time.Sleep(2 * time.Millisecond)
				p.SetPartition(false)
			case 2:
				p.SetDrop(true)
				time.Sleep(time.Millisecond)
				p.SetDrop(false)
			case 3:
				p.ResetAll()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				conn, err := net.Dial("tcp", p.Addr())
				if err != nil {
					continue // drop fault active
				}
				_ = conn.SetDeadline(time.Now().Add(250 * time.Millisecond))
				_, _ = echoRoundTrip(conn, "churn") // errors expected under faults
				_ = conn.Close()
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	p.Heal()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got, err := echoRoundTrip(conn, "after"); err != nil || got != "after\n" {
		t.Fatalf("post-churn round-trip = %q, %v", got, err)
	}
}
