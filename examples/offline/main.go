// Decentralized issuance via owner-published rule bundles — the § IX
// future-work sketch ("a TS implemented within a TEE enclave could
// decentralize the entire system").
//
// The owner seals its ACRs and a delegated issuing key into a signed
// bundle and publishes it. Clients open the bundle locally (the enclave
// attests the owner signature) and issue their own tokens without ever
// contacting a central Token Service; the on-chain contract accepts them
// because it trusts the delegate address.
//
//	go run ./examples/offline
package main

import (
	"fmt"
	"log"
	"time"

	smacs "repro"
	"repro/internal/contracts"
	"repro/internal/ts/offline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	chain := smacs.NewChain(smacs.DefaultChainConfig())
	owner := smacs.NewWalletFromSeed("offline-owner", chain)
	alice := smacs.NewWalletFromSeed("offline-alice", chain)
	eve := smacs.NewWalletFromSeed("offline-eve", chain)
	for _, w := range []*smacs.Wallet{owner, alice, eve} {
		chain.Fund(w.Address(), smacs.Ether(10))
	}

	// The delegated issuing key plays the role of skTS; the contract
	// trusts its address.
	issuerKey := smacs.KeyFromSeed("offline-issuer-key")
	verifier := smacs.NewVerifier(issuerKey.Address())
	protected := smacs.EnableContract(contracts.NewSimpleStorage(), verifier)
	addr, _, err := chain.Deploy(owner.Address(), protected)
	if err != nil {
		return err
	}

	// The owner seals ACRs (whitelist: alice) + the issuing key into a
	// signed bundle, valid for 24 h, and publishes it.
	ruleSet := smacs.NewRuleSet()
	ruleSet.SetSenderList(smacs.NewWhitelist(smacs.ValueKey(alice.Address())))
	bundle, err := offline.Seal(owner.Key(), issuerKey, ruleSet, addr, time.Now().Add(24*time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("owner published a sealed ACR bundle for %s (valid 24h)\n", addr)

	// Each client opens the bundle locally — no central service involved.
	useBundle := func(who *smacs.Wallet, name string) {
		issuer, err := offline.Open(bundle, owner.Address(), nil)
		if err != nil {
			fmt.Printf("%-6s cannot open bundle: %v\n", name, err)
			return
		}
		tk, err := issuer.Issue(&smacs.TokenRequest{
			Type: smacs.SuperToken, Contract: addr, Sender: who.Address(),
		})
		if err != nil {
			fmt.Printf("%-6s locally DENIED by the bundled rules: %v\n", name, err)
			return
		}
		opts := smacs.WithTokens(smacs.TokenEntry{Contract: addr, Token: tk})
		r, err := who.Call(addr, "set", opts, uint64(7))
		if err != nil {
			fmt.Printf("%-6s tx error: %v\n", name, err)
			return
		}
		fmt.Printf("%-6s issued a token locally and called set(7): status=%v\n", name, r.Status)
	}
	useBundle(alice, "alice")
	useBundle(eve, "eve")

	// Tampering with the published bundle is detected at open time.
	forged := *bundle
	forged.RulesJSON = []byte(`{"sender":{"whitelist":["` + smacs.ValueKey(eve.Address()) + `"]}}`)
	if _, err := offline.Open(&forged, owner.Address(), nil); err != nil {
		fmt.Printf("eve's forged bundle rejected: %v\n", err)
	}
	return nil
}
