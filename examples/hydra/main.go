// Enforcing Hydra uniformity (§ V-A).
//
// Three independent implementations ("heads") of the same calculator run on
// the Token Service's private testnets. One head carries a seeded bug that
// miscomputes sumTo(13). The TS issues argument tokens only when all heads
// agree on the requested payload — so every payload except the
// bug-triggering one is served, and the buggy input can never reach the
// chain. Unlike on-chain Hydra, the extra heads cost no gas (§ V-A).
//
//	go run ./examples/hydra
package main

import (
	"fmt"
	"log"

	smacs "repro"
	"repro/internal/contracts"
	"repro/internal/evm"
	"repro/internal/rtverify/hydra"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tool, err := hydra.New(
		hydra.Head{Name: "solidity", Build: contracts.NewCalculatorFormula},
		hydra.Head{Name: "vyper", Build: contracts.NewCalculatorLoop},
		hydra.Head{Name: "serpent", Build: func() *evm.Contract {
			// The third head ships a bug triggered by sumTo(13).
			return contracts.NewCalculatorBuggy(13)
		}},
	)
	if err != nil {
		return err
	}

	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key: smacs.KeyFromSeed("hydra-ts-key"),
	})
	if err != nil {
		return err
	}
	service.AddValidator(tool)
	fmt.Println("Token Service armed with 3 Hydra heads (one secretly buggy at n=13)")

	client := smacs.Address{0xc1}
	target := smacs.Address{0x01}
	for _, n := range []uint64{7, 12, 13, 14, 100} {
		_, err := service.Issue(&smacs.TokenRequest{
			Type:     smacs.ArgumentToken,
			Contract: target,
			Sender:   client,
			Method:   "sumTo",
			Args:     []smacs.NamedArg{{Name: "n", Value: n}},
		})
		if err != nil {
			fmt.Printf("sumTo(%3d): token DENIED — %v\n", n, err)
			continue
		}
		fmt.Printf("sumTo(%3d): token issued (all heads agree)\n", n)
	}
	fmt.Println("→ the bug-triggering payload is filtered at issuance; every other")
	fmt.Println("  request is served — no head consumes any on-chain gas")
	return nil
}
