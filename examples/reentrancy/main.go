// Blocking the TheDAO-style re-entrancy attack (§ V-B, Fig. 7).
//
// Act 1 shows the attack succeeding against the unprotected Bank. Act 2
// protects the bank with SMACS backed by the ECF checker: the Token
// Service simulates each requested call on its local testnet mirror and
// refuses tokens for calls that are not effectively callback-free — the
// attacker never obtains a withdraw token, while innocent clients are
// served as usual.
//
//	go run ./examples/reentrancy
package main

import (
	"fmt"
	"log"

	smacs "repro"
	"repro/internal/contracts"
	"repro/internal/rtverify/ecf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Act 1: the Fig. 7 attack on the unprotected Bank ==")
	if err := legacyAttack(); err != nil {
		return err
	}
	fmt.Println("\n== Act 2: SMACS + ECFChecker blocks the attack at token issuance ==")
	return protectedScenario()
}

// legacyAttack replays Fig. 7 verbatim.
func legacyAttack() error {
	chain := smacs.NewChain(smacs.DefaultChainConfig())
	victim := smacs.NewWalletFromSeed("reent-victim", chain)
	attacker := smacs.NewWalletFromSeed("reent-attacker", chain)
	chain.Fund(victim.Address(), smacs.Ether(100))
	chain.Fund(attacker.Address(), smacs.Ether(100))

	bankAddr, _, err := chain.Deploy(victim.Address(), contracts.NewBank())
	if err != nil {
		return err
	}
	attackerAddr, _, err := chain.Deploy(attacker.Address(), contracts.NewAttacker(bankAddr, true))
	if err != nil {
		return err
	}

	if _, err := victim.Call(bankAddr, "addBalance", smacs.CallOpts{Value: smacs.Ether(10)}); err != nil {
		return err
	}
	if _, err := attacker.Call(attackerAddr, "deposit", smacs.CallOpts{Value: smacs.Ether(2)}); err != nil {
		return err
	}
	fmt.Printf("bank holds %s wei (victim 10 ETH + attacker 2 ETH)\n", chain.Balance(bankAddr))

	if _, err := attacker.Call(attackerAddr, "withdraw", smacs.CallOpts{}); err != nil {
		return err
	}
	fmt.Printf("after attack: bank %s wei, attacker contract %s wei\n",
		chain.Balance(bankAddr), chain.Balance(attackerAddr))
	fmt.Println("→ the attacker withdrew DOUBLE its deposit; the bank is insolvent")
	return nil
}

// protectedScenario wires the § V-B defence.
func protectedScenario() error {
	// The TS's local testnet mirror: the legacy bank plus the publicly
	// visible attacker contract and deposits.
	mirror := smacs.NewChain(smacs.DefaultChainConfig())
	victim := smacs.NewWalletFromSeed("reent-victim", mirror)
	attacker := smacs.NewWalletFromSeed("reent-attacker", mirror)
	mirror.Fund(victim.Address(), smacs.Ether(100))
	mirror.Fund(attacker.Address(), smacs.Ether(100))

	bankAddr, _, err := mirror.Deploy(victim.Address(), contracts.NewBank())
	if err != nil {
		return err
	}
	attackerAddr, _, err := mirror.Deploy(attacker.Address(), contracts.NewAttacker(bankAddr, true))
	if err != nil {
		return err
	}
	if _, err := victim.Call(bankAddr, "addBalance", smacs.CallOpts{Value: smacs.Ether(10)}); err != nil {
		return err
	}
	if _, err := attacker.Call(attackerAddr, "deposit", smacs.CallOpts{Value: smacs.Ether(2)}); err != nil {
		return err
	}

	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key: smacs.KeyFromSeed("reent-ts-key"),
	})
	if err != nil {
		return err
	}
	service.AddValidator(ecf.New(mirror, bankAddr))
	fmt.Println("Token Service armed with the ECF checker (simulates on its testnet mirror)")

	request := func(who smacs.Address, name string) {
		_, err := service.Issue(&smacs.TokenRequest{
			Type:     smacs.ArgumentToken,
			Contract: bankAddr,
			Sender:   who,
			Method:   "withdraw",
		})
		if err != nil {
			fmt.Printf("%-9s withdraw-token request: DENIED (%v)\n", name, err)
			return
		}
		fmt.Printf("%-9s withdraw-token request: issued\n", name)
	}
	request(victim.Address(), "victim")
	request(attacker.Address(), "attacker")
	fmt.Println("→ the vulnerable bank keeps serving innocent clients while the")
	fmt.Println("  exploit is rejected before it ever reaches the chain")
	return nil
}
