// Token sale with an off-chain whitelist — the paper's motivating workload
// (§ II-D): sales like Bluzelle's paid ~9.3 ETH just to whitelist 7473
// participants on-chain. With SMACS the whitelist lives in the Token
// Service: additions and removals are free, instant, and private, and the
// contract only pays a constant token verification per call.
//
//	go run ./examples/tokensale
package main

import (
	"fmt"
	"log"
	"math/big"

	smacs "repro"
	"repro/internal/contracts"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	chain := smacs.NewChain(smacs.DefaultChainConfig())
	owner := smacs.NewWalletFromSeed("sale-owner", chain)
	alice := smacs.NewWalletFromSeed("sale-alice", chain)
	eve := smacs.NewWalletFromSeed("sale-eve", chain)
	for _, w := range []*smacs.Wallet{owner, alice, eve} {
		chain.Fund(w.Address(), smacs.Ether(100))
	}

	// ACRs: only whitelisted senders obtain tokens (Example 1). The list
	// is dynamic — no contract changes, no gas.
	ruleSet := smacs.NewRuleSet()
	ruleSet.SetSenderList(smacs.NewWhitelist(smacs.ValueKey(alice.Address())))

	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key:   smacs.KeyFromSeed("sale-ts-key"),
		Rules: ruleSet,
	})
	if err != nil {
		return err
	}

	verifier := smacs.NewVerifier(service.Address())
	sale := smacs.EnableContract(contracts.NewTokenSale(100), verifier)
	addr, _, err := chain.Deploy(owner.Address(), sale)
	if err != nil {
		return err
	}
	fmt.Printf("token sale at %s — whitelist lives off-chain in the TS\n", addr)

	buy := func(who *smacs.Wallet, name string) {
		tk, err := service.Issue(&smacs.TokenRequest{
			Type: smacs.SuperToken, Contract: addr, Sender: who.Address(),
		})
		if err != nil {
			fmt.Printf("%-6s denied at the Token Service: %v\n", name, err)
			return
		}
		opts := smacs.WithTokens(smacs.TokenEntry{Contract: addr, Token: tk})
		opts.Value = big.NewInt(5)
		r, err := who.Call(addr, "buy", opts)
		if err != nil {
			fmt.Printf("%-6s tx error: %v\n", name, err)
			return
		}
		fmt.Printf("%-6s bought %v sale-tokens (gas %d)\n", name, r.Return[0], r.GasUsed)
	}

	fmt.Println("\n-- initial whitelist: {alice} --")
	buy(alice, "alice")
	buy(eve, "eve")

	fmt.Println("\n-- owner whitelists eve (free, instant, off-chain) --")
	ruleSet.AddSender(smacs.ValueKey(eve.Address()))
	buy(eve, "eve")

	fmt.Println("\n-- owner revokes alice (Example 2: dynamic removal) --")
	ruleSet.RemoveSender(smacs.ValueKey(alice.Address()))
	buy(alice, "alice")

	fmt.Println("\nCompare: an on-chain whitelist pays ~20k gas per address per update")
	fmt.Println("(run `go run ./cmd/smacs-bench -baseline` for the full E7 comparison).")
	return nil
}
