// Call chains with token arrays (§ IV-D, Fig. 5).
//
// A transaction into SCA triggers SCA→SCB→SCC; all three contracts are
// SMACS-enabled, so the client obtains one token per contract and embeds
// the address-tagged array SCA:tkA ‖ SCB:tkB ‖ SCC:tkC. Each contract
// extracts and verifies its own entry. The demo then drops SCB's token to
// show the chain failing exactly at the unauthorized hop.
//
//	go run ./examples/callchain
package main

import (
	"fmt"
	"log"

	smacs "repro"
	"repro/internal/contracts"
	"repro/internal/evm"
	"repro/internal/gas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	chain := smacs.NewChain(smacs.DefaultChainConfig())
	owner := smacs.NewWalletFromSeed("chain-owner", chain)
	client := smacs.NewWalletFromSeed("chain-client", chain)
	chain.Fund(owner.Address(), smacs.Ether(100))
	chain.Fund(client.Address(), smacs.Ether(100))

	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key: smacs.KeyFromSeed("chain-ts-key"),
	})
	if err != nil {
		return err
	}

	// Deploy SCA→SCB→SCC, each SMACS-enabled (Fig. 5's topology).
	wrap := func(link *evm.Contract) *evm.Contract {
		return smacs.EnableContract(link, smacs.NewVerifier(service.Address()))
	}
	deploy := func(c *evm.Contract) (smacs.Address, error) {
		addr, _, err := chain.Deploy(owner.Address(), c)
		return addr, err
	}
	addrs, err := contracts.BuildChain(deploy, 3, wrap)
	if err != nil {
		return err
	}
	fmt.Printf("chain: SCA=%s → SCB=%s → SCC=%s\n", addrs[0], addrs[1], addrs[2])

	// One method token per contract: tkA, tkB, tkC.
	entries := make([]smacs.TokenEntry, 0, 3)
	for _, addr := range addrs {
		tk, err := service.Issue(&smacs.TokenRequest{
			Type:     smacs.MethodToken,
			Contract: addr,
			Sender:   client.Address(),
			Method:   "relay(uint256,string)",
		})
		if err != nil {
			return err
		}
		entries = append(entries, smacs.TokenEntry{Contract: addr, Token: tk})
	}

	r, err := client.Call(addrs[0], "relay", smacs.WithTokens(entries...), uint64(0), "hello")
	if err != nil {
		return err
	}
	fmt.Printf("relay(0) through the full chain: status=%v, hops=%v\n", r.Status, r.Return[0])
	fmt.Printf("  gas: total=%d, verify=%d, parse=%d (each contract pays to scan the array)\n",
		r.GasUsed, r.GasByCategory[gas.CatVerify], r.GasByCategory[gas.CatParse])

	// Drop SCB's token: SCA verifies fine, the chain dies at SCB.
	partial := smacs.WithTokens(entries[0], entries[2])
	r, err = client.Call(addrs[0], "relay", partial, uint64(0), "hello")
	if err != nil {
		return err
	}
	fmt.Printf("relay(0) without SCB's token: status=%v (%v)\n", r.Status, r.Err)
	return nil
}
