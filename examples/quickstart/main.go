// Quickstart: protect a legacy contract with SMACS in ~50 lines.
//
// The flow mirrors § III-C: the owner generates the Token Service key pair,
// deploys the SMACS-enabled contract preloaded with the service address,
// the client requests a token, and calls the contract with the token
// embedded — calls without a token are rejected on-chain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	smacs "repro"
	"repro/internal/contracts"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A local dev chain with two funded accounts.
	chain := smacs.NewChain(smacs.DefaultChainConfig())
	owner := smacs.NewWalletFromSeed("quickstart-owner", chain)
	client := smacs.NewWalletFromSeed("quickstart-client", chain)
	chain.Fund(owner.Address(), smacs.Ether(10))
	chain.Fund(client.Address(), smacs.Ether(10))

	// The owner creates the Token Service (holding skTS)...
	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key: smacs.KeyFromSeed("quickstart-ts-key"),
	})
	if err != nil {
		return err
	}

	// ...and deploys the SMACS-enabled contract preloaded with pkTS's
	// address. transform.Enable is the Fig. 4 adoption tool: every public
	// method now verifies a token before its body runs.
	verifier := smacs.NewVerifier(service.Address())
	protected := smacs.EnableContract(contracts.NewSimpleStorage(), verifier)
	addr, _, err := chain.Deploy(owner.Address(), protected)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s at %s (trusting TS %s)\n",
		protected.Name(), addr, service.Address())

	// Without a token, the call is rejected on-chain.
	r, err := client.Call(addr, "set", smacs.CallOpts{}, uint64(42))
	if err != nil {
		return err
	}
	fmt.Printf("call without token: status=%v (%v)\n", r.Status, r.Err)

	// The client requests a super token from the TS...
	token, err := service.Issue(&smacs.TokenRequest{
		Type:     smacs.SuperToken,
		Contract: addr,
		Sender:   client.Address(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("issued %s token, expires %s\n", token.Type, token.Expire.Format("15:04:05"))

	// ...and calls with the token embedded in the transaction.
	opts := smacs.WithTokens(smacs.TokenEntry{Contract: addr, Token: token})
	if r, err = client.Call(addr, "set", opts, uint64(42)); err != nil {
		return err
	}
	fmt.Printf("set(42) with token: status=%v, gas=%d (%.4f USD)\n",
		r.Status, r.GasUsed, r.FeeUSD)

	r, err = client.Call(addr, "get", opts)
	if err != nil {
		return err
	}
	fmt.Printf("get() = %v\n", r.Return[0])
	return nil
}
