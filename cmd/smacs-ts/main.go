// Command smacs-ts runs a SMACS Token Service with its HTTP front end
// (Fig. 1): clients POST token requests to /v1/token; the owner manages
// Access Control Rules on /v1/rules with a bearer secret.
//
// Usage:
//
//	smacs-ts -addr :8546 -key-seed my-service -rules rules.json \
//	         -owner-token s3cret -lifetime 1h
//
// The rules file uses the Fig. 6 layout, e.g.:
//
//	{
//	  "sender":   {"whitelist": ["0x366c...", "0xd488..."]},
//	  "method":   {"methodA": {"blacklist": ["0xba7f..."]}},
//	  "argument": {"argA": {"whitelist": ["0x3540..."]}}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/tshttp"
)

func main() {
	var (
		addr       = flag.String("addr", ":8546", "listen address")
		keySeed    = flag.String("key-seed", "", "deterministic seed for skTS (empty: random key)")
		rulesPath  = flag.String("rules", "", "path to a Fig. 6-style rules JSON file (empty: allow all)")
		ownerToken = flag.String("owner-token", "", "bearer secret for rule administration (empty: admin disabled)")
		lifetime   = flag.Duration("lifetime", time.Hour, "token lifetime")
		needProof  = flag.Bool("require-proof", false, "demand a proof of possession on every request")
	)
	flag.Parse()
	if err := run(*addr, *keySeed, *rulesPath, *ownerToken, *lifetime, *needProof); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-ts:", err)
		os.Exit(1)
	}
}

func run(addr, keySeed, rulesPath, ownerToken string, lifetime time.Duration, needProof bool) error {
	var key *secp256k1.PrivateKey
	if keySeed != "" {
		key = secp256k1.PrivateKeyFromSeed([]byte(keySeed))
	} else {
		var err error
		key, err = secp256k1.GenerateKey(nil)
		if err != nil {
			return err
		}
	}

	ruleSet := rules.NewRuleSet()
	if rulesPath != "" {
		raw, err := os.ReadFile(rulesPath)
		if err != nil {
			return fmt.Errorf("rules file: %w", err)
		}
		if err := json.Unmarshal(raw, ruleSet); err != nil {
			return fmt.Errorf("rules file: %w", err)
		}
	}

	svc, err := ts.New(ts.Config{Key: key, Rules: ruleSet, Lifetime: lifetime, RequireProof: needProof})
	if err != nil {
		return err
	}
	server := tshttp.NewServer(svc, ownerToken)

	fmt.Printf("SMACS Token Service\n")
	fmt.Printf("  signing address: %s  (preload this into your contracts' verifier)\n", svc.Address())
	fmt.Printf("  token lifetime:  %s\n", lifetime)
	fmt.Printf("  listening on:    %s\n", addr)
	if ownerToken == "" {
		fmt.Printf("  rule admin:      disabled (set -owner-token to enable)\n")
	}
	return http.ListenAndServe(addr, server.Handler())
}
