// Command smacs-ts runs a SMACS Token Service with its HTTP front end
// (Fig. 1): clients POST token requests to /v1/token; the owner manages
// Access Control Rules on /v1/rules with a bearer secret.
//
// Usage:
//
//	smacs-ts -addr :8546 -key-seed my-service -rules rules.json \
//	         -owner-token s3cret -lifetime 1h
//
// With -store file the one-time index counter survives restarts: every
// leased index block is journaled to a group-commit WAL under -dir
// before any index from it is handed out, and a restarted service
// resumes strictly above its highest durable lease — no index is ever
// issued twice across a crash (see internal/store):
//
//	smacs-ts -store file -dir /var/lib/smacs-ts -fsync-batch 16
//
// Distributed deployment: the counter can be replicated across
// processes. Replicas serve the lease-based quorum protocol
// (internal/ts/replica/net); frontends allocate index blocks through a
// majority of them, so any single replica can crash, partition, or lag
// without stopping issuance — and a majority's WALs are enough to
// recover, never re-issuing an index:
//
//	smacs-ts -replica-of sale -addr :9001 -store file -dir /var/lib/r1
//	smacs-ts -replica-of sale -addr :9002 -store file -dir /var/lib/r2
//	smacs-ts -replica-of sale -addr :9003 -store file -dir /var/lib/r3
//	smacs-ts -addr :8546 -peers http://h1:9001,http://h2:9002,http://h3:9003
//
// Several frontends can share one keyspace without coordinating:
// -group i/n stripes the quorum-allocated blocks so frontend i of n
// issues indexes disjoint from every other frontend's (consistent-hash
// routing of wallets to frontends lives client-side; see
// internal/ts/ring):
//
//	smacs-ts -addr :8546 -peers ... -group 0/2
//	smacs-ts -addr :8547 -peers ... -group 1/2
//
// Dynamic membership replaces the fixed -group i/n striping with named
// replica groups that can join and drain at runtime. Each frontend
// names its group and the bootstrap membership; an operator then drives
// changes through the owner-guarded admin endpoints
// (POST /v1/admin/{join,drain}) on any live frontend, and every member
// adopts the new epoch-numbered view without ever issuing a duplicate
// one-time index (see internal/ts/membership). With -dir the adopted
// views and released block leases are journaled under dir/membership,
// so a restarted frontend resumes its last view instead of its boot
// view:
//
//	smacs-ts -addr :8546 -peers ... -group-name g1 \
//	         -initial-groups g1=http://h1:8546,g2=http://h2:8546 -dir /var/lib/fe1
//
// On SIGTERM the daemon drains in-flight requests and releases its
// unexhausted block leases (journaled with -store file or -group-name
// plus -dir), so a clean restart re-issues the remainders instead of
// burning them.
//
// Observability: GET /metrics on the main listener renders the process
// registry (issuance counters, HTTP latency histograms, WAL series) in
// Prometheus text format. -metrics-addr moves the scrape endpoint to a
// separate, typically private, listener; -pprof additionally mounts
// /debug/pprof/* there (or on the main listener without -metrics-addr):
//
//	smacs-ts -addr :8546 -metrics-addr 127.0.0.1:9100 -pprof
//
// The rules file uses the Fig. 6 layout, e.g.:
//
//	{
//	  "sender":   {"whitelist": ["0x366c...", "0xd488..."]},
//	  "method":   {"methodA": {"blacklist": ["0xba7f..."]}},
//	  "argument": {"argA": {"whitelist": ["0x3540..."]}}
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/store"
	"repro/internal/ts"
	"repro/internal/ts/membership"
	replicanet "repro/internal/ts/replica/net"
	"repro/internal/ts/ring"
	"repro/internal/tshttp"
)

func main() {
	var (
		addr       = flag.String("addr", ":8546", "listen address")
		keySeed    = flag.String("key-seed", "", "deterministic seed for skTS (empty: random key)")
		rulesPath  = flag.String("rules", "", "path to a Fig. 6-style rules JSON file (empty: allow all)")
		ownerToken = flag.String("owner-token", "", "bearer secret for rule administration (empty: admin disabled)")
		lifetime   = flag.Duration("lifetime", time.Hour, "token lifetime")
		needProof  = flag.Bool("require-proof", false, "demand a proof of possession on every request")
		storeKind  = flag.String("store", "mem", `one-time counter persistence: "mem" (lost on restart) or "file" (WAL under -dir)`)
		dirPath    = flag.String("dir", "", "-store file: directory for the counter WAL and snapshots")
		fsyncBatch = flag.Int("fsync-batch", 0, "-store file: appends coalesced per fsync (0: store default)")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "index counter shards (concurrent issuance lanes)")

		replicaOf = flag.String("replica-of", "", "run as a counter replica for the named group: serve the quorum protocol (fence/grant/state) on -addr instead of the token API")
		peers     = flag.String("peers", "", "comma-separated replica base URLs (odd count): allocate one-time index blocks through a majority quorum of them instead of locally")
		group     = flag.String("group", "", `"i/n": this frontend is shard i of n sharing the replica group — its blocks are striped so all n issue globally unique indexes with no coordination (requires -peers)`)

		groupName     = flag.String("group-name", "", "dynamic membership: this frontend's named replica group — serve the membership protocol and stripe blocks under an epoch-numbered view that admits joins and drains at runtime (requires -peers and -initial-groups; exclusive with -group)")
		initialGroups = flag.String("initial-groups", "", `"name=url,...": bootstrap membership view mapping each group to its frontend base URL; a -group-name absent from the list boots as a joiner and serves only after POST /v1/admin/join admits it (ignored when -dir holds a persisted view)`)

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics on this separate listener (empty: the main listener's /metrics)")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof/* on the metrics listener (or the main one without -metrics-addr)")
	)
	flag.Parse()
	if err := validateFlags(*addr, *metricsAddr, *shards, *fsyncBatch, *replicaOf, *peers, *group, *groupName, *initialGroups); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-ts:", err)
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *replicaOf != "" {
		err = runReplica(*addr, *replicaOf, *storeKind, *dirPath, *fsyncBatch)
	} else {
		err = run(*addr, *keySeed, *rulesPath, *ownerToken, *lifetime, *needProof, *storeKind, *dirPath, *fsyncBatch, *shards, *peers, *group, *groupName, *initialGroups, *metricsAddr, *pprofOn)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smacs-ts:", err)
		os.Exit(1)
	}
}

// validateFlags rejects inconsistent observability, sizing, and
// replication flags up front, so a typo exits with a usage message
// instead of a half-started daemon (the -store/-dir combinations are
// validated by openCounter).
func validateFlags(addr, metricsAddr string, shards, fsyncBatch int, replicaOf, peers, group, groupName, initialGroups string) error {
	if metricsAddr != "" && metricsAddr == addr {
		return fmt.Errorf("-metrics-addr %q collides with -addr: the main listener already serves /metrics", metricsAddr)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", shards)
	}
	if fsyncBatch < 0 {
		return fmt.Errorf("-fsync-batch must be ≥ 0, got %d", fsyncBatch)
	}
	if replicaOf != "" {
		if peers != "" || group != "" || groupName != "" {
			return fmt.Errorf("-replica-of runs the quorum protocol server; -peers, -group, and -group-name belong on frontends")
		}
		if metricsAddr != "" {
			return fmt.Errorf("-metrics-addr is not served in replica mode")
		}
		return nil
	}
	if peers != "" {
		if n := len(splitList(peers)); n%2 == 0 {
			return fmt.Errorf("-peers needs an odd replica count for majority quorums, got %d", n)
		}
	}
	if group != "" {
		if peers == "" {
			return fmt.Errorf("-group stripes quorum-allocated blocks and requires -peers")
		}
		if groupName != "" {
			return fmt.Errorf("-group (static striping) and -group-name (dynamic membership) are mutually exclusive")
		}
		if _, _, err := parseGroup(group); err != nil {
			return err
		}
	}
	if groupName != "" {
		if peers == "" {
			return fmt.Errorf("-group-name runs dynamic membership over a replica quorum and requires -peers")
		}
		if initialGroups == "" {
			return fmt.Errorf("-group-name requires -initial-groups for the bootstrap membership view")
		}
		if _, _, err := parseInitialGroups(initialGroups); err != nil {
			return err
		}
	} else if initialGroups != "" {
		return fmt.Errorf("-initial-groups names the bootstrap membership and requires -group-name")
	}
	return nil
}

// parseInitialGroups parses the "name=url,name=url" bootstrap membership
// list. Group names come back sorted so independently started frontends
// derive identical view slots from the same list regardless of entry
// order — slot positions decide which blocks each group issues.
func parseInitialGroups(s string) ([]string, map[string]string, error) {
	urls := make(map[string]string)
	for _, pair := range splitList(s) {
		name, url, ok := strings.Cut(pair, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, nil, fmt.Errorf(`-initial-groups entries must look like "name=url", got %q`, pair)
		}
		if _, dup := urls[name]; dup {
			return nil, nil, fmt.Errorf("-initial-groups lists group %q twice", name)
		}
		urls[name] = url
	}
	if len(urls) == 0 {
		return nil, nil, fmt.Errorf("-initial-groups is empty")
	}
	groups := make([]string, 0, len(urls))
	for g := range urls {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	return groups, urls, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseGroup parses the "-group i/n" shard position.
func parseGroup(s string) (index, count int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &count); err != nil {
		return 0, 0, fmt.Errorf(`-group must look like "i/n" (e.g. 0/2), got %q`, s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-group %q out of range: need 0 ≤ i < n", s)
	}
	return index, count, nil
}

// counterBlockSize is how many one-time indexes each shard leases per
// durable allocation; with -store file one fsynced WAL append covers a
// whole block, so the fsync cost amortizes across 64 issued tokens.
const counterBlockSize = 64

// counterStack bundles the service's one-time index counter with the
// hooks the daemon drives around it: startup adoption of leases a
// previous incarnation released, clean-shutdown lease release, and the
// membership manager when the frontend runs a dynamic replica group.
type counterStack struct {
	counter  ts.Counter
	sharded  *ts.ShardedCounter
	reclaims *store.Counter      // reclaim-offer ledger (nil: releases are lost on exit)
	manager  *membership.Manager // non-nil only with -group-name
	backend  *store.File         // closed on clean shutdown to flush batched appends
}

// adoptPending feeds lease remainders a previous incarnation released
// into the sharded counter's free-list. PendingReclaims journals the
// adoption before returning, so the ranges re-issue at most once even
// if this incarnation crashes mid-way.
func (cs *counterStack) adoptPending() error {
	if cs.reclaims == nil {
		return nil
	}
	pending, err := cs.reclaims.PendingReclaims()
	if err != nil {
		return err
	}
	for _, r := range pending {
		if err := cs.sharded.Adopt([]ts.IndexRange{{From: r.From, To: r.To}}); err != nil {
			return err
		}
	}
	return nil
}

// release drains every unexhausted block-lease remainder and journals
// it as a reclaim offer, so a clean shutdown strands no one-time
// indexes: the next incarnation adopts and re-issues the remainders
// instead of burning the blocks.
func (cs *counterStack) release() error {
	ranges := cs.sharded.Release()
	if len(ranges) == 0 || cs.reclaims == nil {
		return nil
	}
	out := make([]store.IndexRange, len(ranges))
	for i, r := range ranges {
		out[i] = store.IndexRange{From: r.From, To: r.To}
	}
	return cs.reclaims.ReleaseRanges(out)
}

func (cs *counterStack) close() error {
	if cs.backend == nil {
		return nil
	}
	return cs.backend.Close()
}

// openCounter builds the service's one-time index counter stack. "mem"
// keeps the default in-memory counter (restart forgets the high-water
// mark — only safe when contracts' bitmaps are re-deployed too); "file"
// journals every block lease so a restarted service never re-issues an
// index; -peers allocates blocks through a majority quorum of counter
// replicas (durability then lives on the replicas' WALs, not this
// process), striped either statically by -group or under a dynamic
// membership view by -group-name.
func openCounter(storeKind, dirPath string, fsyncBatch, shards int, peers, group, groupName, initialGroups, ownerToken string) (*counterStack, error) {
	if peers != "" {
		if groupName != "" {
			return openMembershipCounter(storeKind, dirPath, fsyncBatch, shards, peers, groupName, initialGroups, ownerToken)
		}
		if storeKind != "mem" || dirPath != "" || fsyncBatch != 0 {
			return nil, fmt.Errorf("-peers moves counter durability to the replicas; drop -store file/-dir/-fsync-batch (with -group-name, -dir holds only the membership journal)")
		}
		coord, err := replicanet.NewCoordinator(splitList(peers), replicanet.Options{})
		if err != nil {
			return nil, err
		}
		var underlying ts.Counter = coord
		if group != "" {
			index, count, err := parseGroup(group)
			if err != nil {
				return nil, err
			}
			if underlying, err = ring.NewStripe(coord, index, count); err != nil {
				return nil, err
			}
		}
		sc, err := ts.NewShardedCounter(underlying, shards, counterBlockSize)
		if err != nil {
			return nil, err
		}
		return &counterStack{counter: sc, sharded: sc}, nil
	}
	switch storeKind {
	case "mem":
		if dirPath != "" || fsyncBatch != 0 {
			return nil, fmt.Errorf("-dir and -fsync-batch require -store file")
		}
		sc, err := ts.NewShardedCounter(nil, shards, counterBlockSize)
		if err != nil {
			return nil, err
		}
		return &counterStack{counter: sc, sharded: sc}, nil
	case "file":
		if dirPath == "" {
			return nil, fmt.Errorf("-store file requires -dir")
		}
		if err := os.MkdirAll(dirPath, 0o755); err != nil {
			return nil, err
		}
		f, err := store.OpenFile(dirPath, store.FileOptions{FsyncBatch: fsyncBatch})
		if err != nil {
			return nil, err
		}
		c, err := store.OpenCounter(f, store.DefaultCounterSnapshotEvery)
		if err != nil {
			return nil, err
		}
		sc, err := ts.NewShardedCounter(c, shards, counterBlockSize)
		if err != nil {
			return nil, err
		}
		cs := &counterStack{counter: sc, sharded: sc, reclaims: c, backend: f}
		if err := cs.adoptPending(); err != nil {
			return nil, err
		}
		return cs, nil
	default:
		return nil, fmt.Errorf("unknown -store %q (supported: mem, file)", storeKind)
	}
}

// openMembershipCounter builds the dynamic-membership counter stack: a
// DynamicStripe over the quorum coordinator, the sharded counter on
// top, and the membership Manager that serves the view-change protocol
// (plus the /v1/admin/repair recovery op). With -dir, dir/membership
// journals adopted views AND released block leases — including the
// reclaim/adopt handshake a drain's lease handoff runs through, so an
// interrupted handoff is recovered at the next boot (snapshots stay
// disabled there so no record kind is ever folded away); a restart
// resumes the last adopted view, not the boot view.
func openMembershipCounter(storeKind, dirPath string, fsyncBatch, shards int, peers, groupName, initialGroups, ownerToken string) (*counterStack, error) {
	if storeKind != "mem" {
		return nil, fmt.Errorf("-group-name keeps counter durability on the replicas; drop -store file (-dir holds the membership journal)")
	}
	groups, urls, err := parseInitialGroups(initialGroups)
	if err != nil {
		return nil, err
	}
	view := ring.View{Epoch: 1, Groups: groups}
	var baseK int64
	var journal store.Backend
	var reclaims *store.Counter
	var backend *store.File
	if dirPath != "" {
		sub := filepath.Join(dirPath, "membership")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		f, err := store.OpenFile(sub, store.FileOptions{FsyncBatch: fsyncBatch})
		if err != nil {
			return nil, err
		}
		journal, backend = f, f
		// The file's Replay is single-shot, and the journal has two
		// readers — replay once and feed both.
		snap, recs, err := f.Replay()
		if err != nil {
			return nil, err
		}
		if reclaims, err = store.CounterFrom(f, snap, recs, -1); err != nil {
			return nil, err
		}
		st, ok, err := membership.StateFromRecords(recs)
		if err != nil {
			return nil, err
		}
		if ok {
			view, baseK, urls = st.View, st.BaseK, st.URLs
		}
	}
	coord, err := replicanet.NewCoordinator(splitList(peers), replicanet.Options{})
	if err != nil {
		return nil, err
	}
	stripe, err := ring.NewDynamicStripe(coord, groupName, view, baseK)
	if err != nil {
		return nil, err
	}
	sc, err := ts.NewShardedCounter(stripe, shards, counterBlockSize)
	if err != nil {
		return nil, err
	}
	mgr, err := membership.NewManager(membership.Config{
		Group:      groupName,
		Stripe:     stripe,
		Counter:    sc,
		Journal:    journal,
		Reclaims:   reclaims,
		OwnerToken: ownerToken,
	}, view, urls, baseK)
	if err != nil {
		return nil, err
	}
	cs := &counterStack{counter: sc, sharded: sc, reclaims: reclaims, manager: mgr, backend: backend}
	if err := cs.adoptPending(); err != nil {
		return nil, err
	}
	return cs, nil
}

// runReplica serves the counter quorum protocol on addr: POST
// /v1/replica/{fence,grant} and GET /v1/replica/state, journaling every
// promise and grant before acking so a majority of surviving WALs always
// covers every committed lease. groupName is the label frontends know
// the replica group by; it appears only in the banner.
func runReplica(addr, groupName, storeKind, dirPath string, fsyncBatch int) error {
	var node *replicanet.Node
	switch storeKind {
	case "mem":
		if dirPath != "" || fsyncBatch != 0 {
			return fmt.Errorf("-dir and -fsync-batch require -store file")
		}
		node = replicanet.NewNode()
	case "file":
		if dirPath == "" {
			return fmt.Errorf("-store file requires -dir")
		}
		if err := os.MkdirAll(dirPath, 0o755); err != nil {
			return err
		}
		f, err := store.OpenFile(dirPath, store.FileOptions{FsyncBatch: fsyncBatch})
		if err != nil {
			return err
		}
		if node, err = replicanet.OpenNode(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -store %q (supported: mem, file)", storeKind)
	}
	accepted, promised := node.State()
	fmt.Printf("SMACS Token Service counter replica (group %q)\n", groupName)
	if storeKind == "file" {
		fmt.Printf("  state:       durable (WAL in %s); accepted lease %d, promised epoch %d\n", dirPath, accepted, promised)
	} else {
		fmt.Printf("  state:       in-memory — a restart forgets promises; use -store file outside tests\n")
	}
	fmt.Printf("  listening:   %s (POST /v1/replica/{fence,grant}, GET /v1/replica/state)\n", addr)
	srv := &http.Server{Addr: addr, Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

func run(addr, keySeed, rulesPath, ownerToken string, lifetime time.Duration, needProof bool, storeKind, dirPath string, fsyncBatch, shards int, peers, group, groupName, initialGroups, metricsAddr string, pprofOn bool) error {
	var key *secp256k1.PrivateKey
	if keySeed != "" {
		key = secp256k1.PrivateKeyFromSeed([]byte(keySeed))
	} else {
		var err error
		key, err = secp256k1.GenerateKey(nil)
		if err != nil {
			return err
		}
	}

	ruleSet := rules.NewRuleSet()
	if rulesPath != "" {
		raw, err := os.ReadFile(rulesPath)
		if err != nil {
			return fmt.Errorf("rules file: %w", err)
		}
		if err := json.Unmarshal(raw, ruleSet); err != nil {
			return fmt.Errorf("rules file: %w", err)
		}
	}

	cs, err := openCounter(storeKind, dirPath, fsyncBatch, shards, peers, group, groupName, initialGroups, ownerToken)
	if err != nil {
		return err
	}
	ts.RegisterCounterMetrics(nil, cs.counter)

	svc, err := ts.New(ts.Config{Key: key, Rules: ruleSet, Lifetime: lifetime, RequireProof: needProof, Counter: cs.counter})
	if err != nil {
		return err
	}
	opts := tshttp.ServerOptions{Pprof: pprofOn && metricsAddr == ""}
	if cs.manager != nil {
		opts.Admin = cs.manager.Handler()
	}
	server := tshttp.NewServerWithOptions(svc, ownerToken, opts)

	if metricsAddr != "" {
		// Bind synchronously so a bad -metrics-addr fails the start, not a
		// goroutine minutes later; serve in the background thereafter.
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		go func() {
			if err := http.Serve(ln, metricsHandler(pprofOn)); err != nil {
				fmt.Fprintln(os.Stderr, "smacs-ts: metrics listener:", err)
			}
		}()
	}

	fmt.Printf("SMACS Token Service\n")
	fmt.Printf("  signing address: %s  (preload this into your contracts' verifier)\n", svc.Address())
	fmt.Printf("  token lifetime:  %s\n", lifetime)
	switch {
	case groupName != "":
		st := cs.manager.State()
		fmt.Printf("  index counter:   replicated (quorum of %d peers, %d shards; group %q under membership epoch %d of %d groups)\n",
			len(splitList(peers)), shards, groupName, st.View.Epoch, len(st.View.Groups))
	case peers != "":
		fmt.Printf("  index counter:   replicated (quorum of %d peers, %d shards", len(splitList(peers)), shards)
		if group != "" {
			fmt.Printf(", shard %s of the keyspace", group)
		}
		fmt.Printf(")\n")
	case storeKind == "file":
		fmt.Printf("  index counter:   durable (WAL in %s, %d shards)\n", dirPath, shards)
	default:
		fmt.Printf("  index counter:   in-memory (%d shards; restart forgets the high-water mark)\n", shards)
	}
	fmt.Printf("  listening on:    %s\n", addr)
	if metricsAddr != "" {
		fmt.Printf("  metrics on:      %s/metrics", metricsAddr)
	} else {
		fmt.Printf("  metrics on:      %s/metrics", addr)
	}
	if pprofOn {
		fmt.Printf(" (+ /debug/pprof)")
	}
	fmt.Printf("\n")
	if ownerToken == "" {
		fmt.Printf("  rule admin:      disabled (set -owner-token to enable)\n")
		if cs.manager != nil {
			fmt.Printf("  membership:      endpoints mounted but unreachable without -owner-token\n")
		}
	}

	// Serve until SIGTERM/SIGINT, then drain in-flight requests and hand
	// the unexhausted block leases back (journaled as reclaim offers) so
	// a clean restart re-issues the remainders instead of burning them.
	srv := &http.Server{Addr: addr, Handler: server.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Printf("smacs-ts: %s — draining requests and releasing block leases\n", sig)
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "smacs-ts: shutdown:", err)
		}
		if err := cs.release(); err != nil {
			_ = cs.close()
			return fmt.Errorf("release block leases: %w", err)
		}
		return cs.close()
	}
}

// metricsHandler serves the process-default registry (the one the service,
// store, and HTTP frontend all record into when no explicit registry is
// configured) on the dedicated observability listener.
func metricsHandler(pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Default().Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
