package main

import (
	"testing"
)

// A file-backed counter must resume strictly above every index a previous
// incarnation issued — the CLI-level view of the store.Counter contract.
func TestOpenCounterFileResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := openCounter("file", dir, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	// Restart: the old handle is abandoned (no Close), like a crash.
	c2, err := openCounter("file", dir, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across restart", idx)
		}
	}
}

func TestOpenCounterRejectsBadFlags(t *testing.T) {
	if _, err := openCounter("file", "", 0, 1); err == nil {
		t.Error("file store without -dir accepted")
	}
	if _, err := openCounter("mem", "/tmp/x", 0, 1); err == nil {
		t.Error("-dir without file store accepted")
	}
	if _, err := openCounter("mem", "", 8, 1); err == nil {
		t.Error("-fsync-batch without file store accepted")
	}
	if _, err := openCounter("tape", "", 0, 1); err == nil {
		t.Error("unknown store accepted")
	}
}
