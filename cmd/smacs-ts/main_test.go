package main

import (
	"net/http/httptest"
	"testing"
)

// A file-backed counter must resume strictly above every index a previous
// incarnation issued — the CLI-level view of the store.Counter contract.
func TestOpenCounterFileResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := openCounter("file", dir, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	// Restart: the old handle is abandoned (no Close), like a crash.
	c2, err := openCounter("file", dir, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across restart", idx)
		}
	}
}

func TestOpenCounterRejectsBadFlags(t *testing.T) {
	if _, err := openCounter("file", "", 0, 1); err == nil {
		t.Error("file store without -dir accepted")
	}
	if _, err := openCounter("mem", "/tmp/x", 0, 1); err == nil {
		t.Error("-dir without file store accepted")
	}
	if _, err := openCounter("mem", "", 8, 1); err == nil {
		t.Error("-fsync-batch without file store accepted")
	}
	if _, err := openCounter("tape", "", 0, 1); err == nil {
		t.Error("unknown store accepted")
	}
}

// Bad observability/sizing flag combinations must be rejected before the
// daemon does any work (main exits 2 with usage on these).
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(":8546", "", 4, 0); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "127.0.0.1:9100", 4, 16); err != nil {
		t.Errorf("separate metrics listener rejected: %v", err)
	}
	if err := validateFlags(":8546", ":8546", 4, 0); err == nil {
		t.Error("-metrics-addr colliding with -addr accepted")
	}
	if err := validateFlags(":8546", "", 0, 0); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := validateFlags(":8546", "", 4, -1); err == nil {
		t.Error("negative -fsync-batch accepted")
	}
}

// The dedicated metrics listener serves the default registry and only
// mounts pprof when asked.
func TestMetricsHandlerRoutes(t *testing.T) {
	for _, tc := range []struct {
		pprofOn    bool
		path       string
		wantStatus int
	}{
		{false, "/metrics", 200},
		{false, "/debug/pprof/cmdline", 404},
		{true, "/debug/pprof/cmdline", 200},
		{true, "/metrics", 200},
	} {
		rec := httptest.NewRecorder()
		metricsHandler(tc.pprofOn).ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.wantStatus {
			t.Errorf("pprof=%v GET %s = %d, want %d", tc.pprofOn, tc.path, rec.Code, tc.wantStatus)
		}
	}
}
