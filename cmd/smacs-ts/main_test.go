package main

import (
	"net/http/httptest"
	"testing"

	replicanet "repro/internal/ts/replica/net"
)

// A file-backed counter must resume strictly above every index a previous
// incarnation issued — the CLI-level view of the store.Counter contract.
func TestOpenCounterFileResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := openCounter("file", dir, 4, 2, "", "")
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	// Restart: the old handle is abandoned (no Close), like a crash.
	c2, err := openCounter("file", dir, 4, 2, "", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across restart", idx)
		}
	}
}

func TestOpenCounterRejectsBadFlags(t *testing.T) {
	if _, err := openCounter("file", "", 0, 1, "", ""); err == nil {
		t.Error("file store without -dir accepted")
	}
	if _, err := openCounter("mem", "/tmp/x", 0, 1, "", ""); err == nil {
		t.Error("-dir without file store accepted")
	}
	if _, err := openCounter("mem", "", 8, 1, "", ""); err == nil {
		t.Error("-fsync-batch without file store accepted")
	}
	if _, err := openCounter("tape", "", 0, 1, "", ""); err == nil {
		t.Error("unknown store accepted")
	}
	if _, err := openCounter("file", "/tmp/x", 0, 1, "http://a,http://b,http://c", ""); err == nil {
		t.Error("-peers with a local file store accepted: durability would be claimed twice")
	}
	if _, err := openCounter("mem", "", 0, 1, "http://a,http://b", ""); err == nil {
		t.Error("even peer count accepted")
	}
}

// A frontend with -peers allocates through the networked quorum, and
// -group striping keeps two frontends' indexes disjoint with no
// coordination between them — the CLI-level view of ring.Stripe over
// replicanet.Coordinator.
func TestOpenCounterNetworkedStripedFrontends(t *testing.T) {
	urls := ""
	for i := 0; i < 3; i++ {
		srv, err := replicanet.Serve(replicanet.NewNode(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		if i > 0 {
			urls += ","
		}
		urls += srv.URL()
	}
	seen := make(map[int64]string)
	for _, g := range []string{"0/2", "1/2"} {
		c, err := openCounter("mem", "", 0, 2, urls, g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3*counterBlockSize; i++ {
			idx, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if other, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both frontend %s and %s", idx, other, g)
			}
			seen[idx] = g
		}
	}
}

// Bad observability/sizing flag combinations must be rejected before the
// daemon does any work (main exits 2 with usage on these).
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(":8546", "", 4, 0, "", "", ""); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "127.0.0.1:9100", 4, 16, "", "", ""); err != nil {
		t.Errorf("separate metrics listener rejected: %v", err)
	}
	if err := validateFlags(":8546", ":8546", 4, 0, "", "", ""); err == nil {
		t.Error("-metrics-addr colliding with -addr accepted")
	}
	if err := validateFlags(":8546", "", 0, 0, "", "", ""); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := validateFlags(":8546", "", 4, -1, "", "", ""); err == nil {
		t.Error("negative -fsync-batch accepted")
	}

	peers3 := "http://a:1,http://b:2,http://c:3"
	if err := validateFlags(":9001", "", 4, 0, "sale", "", ""); err != nil {
		t.Errorf("replica mode rejected: %v", err)
	}
	if err := validateFlags(":9001", "", 4, 0, "sale", peers3, ""); err == nil {
		t.Error("-replica-of combined with -peers accepted")
	}
	if err := validateFlags(":9001", "127.0.0.1:9100", 4, 0, "sale", "", ""); err == nil {
		t.Error("-metrics-addr in replica mode accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "1/2"); err != nil {
		t.Errorf("quorum frontend flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "", 4, 0, "", "http://a:1,http://b:2", ""); err == nil {
		t.Error("even -peers count accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", "", "0/2"); err == nil {
		t.Error("-group without -peers accepted")
	}
	for _, bad := range []string{"2/2", "-1/2", "0/0", "x/y", "1"} {
		if err := validateFlags(":8546", "", 4, 0, "", peers3, bad); err == nil {
			t.Errorf("-group %q accepted", bad)
		}
	}
}

// runReplica's store validation must fail before it ever binds a port.
func TestRunReplicaRejectsBadStores(t *testing.T) {
	if err := runReplica(":0", "g", "file", "", 0); err == nil {
		t.Error("file-backed replica without -dir accepted")
	}
	if err := runReplica(":0", "g", "mem", "/tmp/x", 0); err == nil {
		t.Error("-dir without file store accepted")
	}
	if err := runReplica(":0", "g", "tape", "", 0); err == nil {
		t.Error("unknown store accepted")
	}
}

// The dedicated metrics listener serves the default registry and only
// mounts pprof when asked.
func TestMetricsHandlerRoutes(t *testing.T) {
	for _, tc := range []struct {
		pprofOn    bool
		path       string
		wantStatus int
	}{
		{false, "/metrics", 200},
		{false, "/debug/pprof/cmdline", 404},
		{true, "/debug/pprof/cmdline", 200},
		{true, "/metrics", 200},
	} {
		rec := httptest.NewRecorder()
		metricsHandler(tc.pprofOn).ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.wantStatus {
			t.Errorf("pprof=%v GET %s = %d, want %d", tc.pprofOn, tc.path, rec.Code, tc.wantStatus)
		}
	}
}
