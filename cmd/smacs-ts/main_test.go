package main

import (
	"net/http/httptest"
	"testing"

	replicanet "repro/internal/ts/replica/net"
)

// A file-backed counter must resume strictly above every index a previous
// incarnation issued — the CLI-level view of the store.Counter contract.
func TestOpenCounterFileResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := openCounter("file", dir, 4, 2, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c1.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	// Restart: the old handle is abandoned (no Close), like a crash.
	c2, err := openCounter("file", dir, 4, 2, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*counterBlockSize; i++ {
		idx, err := c2.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across restart", idx)
		}
	}
}

func TestOpenCounterRejectsBadFlags(t *testing.T) {
	if _, err := openCounter("file", "", 0, 1, "", "", "", "", ""); err == nil {
		t.Error("file store without -dir accepted")
	}
	if _, err := openCounter("mem", "/tmp/x", 0, 1, "", "", "", "", ""); err == nil {
		t.Error("-dir without file store accepted")
	}
	if _, err := openCounter("mem", "", 8, 1, "", "", "", "", ""); err == nil {
		t.Error("-fsync-batch without file store accepted")
	}
	if _, err := openCounter("tape", "", 0, 1, "", "", "", "", ""); err == nil {
		t.Error("unknown store accepted")
	}
	if _, err := openCounter("file", "/tmp/x", 0, 1, "http://a,http://b,http://c", "", "", "", ""); err == nil {
		t.Error("-peers with a local file store accepted: durability would be claimed twice")
	}
	if _, err := openCounter("mem", "", 0, 1, "http://a,http://b", "", "", "", ""); err == nil {
		t.Error("even peer count accepted")
	}
}

// A frontend with -peers allocates through the networked quorum, and
// -group striping keeps two frontends' indexes disjoint with no
// coordination between them — the CLI-level view of ring.Stripe over
// replicanet.Coordinator.
func TestOpenCounterNetworkedStripedFrontends(t *testing.T) {
	urls := ""
	for i := 0; i < 3; i++ {
		srv, err := replicanet.Serve(replicanet.NewNode(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		if i > 0 {
			urls += ","
		}
		urls += srv.URL()
	}
	seen := make(map[int64]string)
	for _, g := range []string{"0/2", "1/2"} {
		c, err := openCounter("mem", "", 0, 2, urls, g, "", "", "")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3*counterBlockSize; i++ {
			idx, err := c.counter.Next()
			if err != nil {
				t.Fatal(err)
			}
			if other, dup := seen[idx]; dup {
				t.Fatalf("index %d issued by both frontend %s and %s", idx, other, g)
			}
			seen[idx] = g
		}
	}
}

// Bad observability/sizing flag combinations must be rejected before the
// daemon does any work (main exits 2 with usage on these).
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(":8546", "", 4, 0, "", "", "", "", ""); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "127.0.0.1:9100", 4, 16, "", "", "", "", ""); err != nil {
		t.Errorf("separate metrics listener rejected: %v", err)
	}
	if err := validateFlags(":8546", ":8546", 4, 0, "", "", "", "", ""); err == nil {
		t.Error("-metrics-addr colliding with -addr accepted")
	}
	if err := validateFlags(":8546", "", 0, 0, "", "", "", "", ""); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := validateFlags(":8546", "", 4, -1, "", "", "", "", ""); err == nil {
		t.Error("negative -fsync-batch accepted")
	}

	peers3 := "http://a:1,http://b:2,http://c:3"
	if err := validateFlags(":9001", "", 4, 0, "sale", "", "", "", ""); err != nil {
		t.Errorf("replica mode rejected: %v", err)
	}
	if err := validateFlags(":9001", "", 4, 0, "sale", peers3, "", "", ""); err == nil {
		t.Error("-replica-of combined with -peers accepted")
	}
	if err := validateFlags(":9001", "127.0.0.1:9100", 4, 0, "sale", "", "", "", ""); err == nil {
		t.Error("-metrics-addr in replica mode accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "1/2", "", ""); err != nil {
		t.Errorf("quorum frontend flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "", 4, 0, "", "http://a:1,http://b:2", "", "", ""); err == nil {
		t.Error("even -peers count accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", "", "0/2", "", ""); err == nil {
		t.Error("-group without -peers accepted")
	}
	for _, bad := range []string{"2/2", "-1/2", "0/0", "x/y", "1"} {
		if err := validateFlags(":8546", "", 4, 0, "", peers3, bad, "", ""); err == nil {
			t.Errorf("-group %q accepted", bad)
		}
	}
}

// runReplica's store validation must fail before it ever binds a port.
func TestRunReplicaRejectsBadStores(t *testing.T) {
	if err := runReplica(":0", "g", "file", "", 0); err == nil {
		t.Error("file-backed replica without -dir accepted")
	}
	if err := runReplica(":0", "g", "mem", "/tmp/x", 0); err == nil {
		t.Error("-dir without file store accepted")
	}
	if err := runReplica(":0", "g", "tape", "", 0); err == nil {
		t.Error("unknown store accepted")
	}
}

// The dedicated metrics listener serves the default registry and only
// mounts pprof when asked.
func TestMetricsHandlerRoutes(t *testing.T) {
	for _, tc := range []struct {
		pprofOn    bool
		path       string
		wantStatus int
	}{
		{false, "/metrics", 200},
		{false, "/debug/pprof/cmdline", 404},
		{true, "/debug/pprof/cmdline", 200},
		{true, "/metrics", 200},
	} {
		rec := httptest.NewRecorder()
		metricsHandler(tc.pprofOn).ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.wantStatus {
			t.Errorf("pprof=%v GET %s = %d, want %d", tc.pprofOn, tc.path, rec.Code, tc.wantStatus)
		}
	}
}

// A clean shutdown must hand unexhausted block-lease remainders back to
// the WAL so the next incarnation re-issues them: across a release +
// restart the issued index set stays gap-free — no range is burned.
func TestOpenCounterCleanShutdownLeavesNoGap(t *testing.T) {
	dir := t.TempDir()
	cs1, err := openCounter("file", dir, 0, 2, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 40; i++ {
		idx, err := cs1.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	// Clean shutdown: remainders become journaled reclaim offers.
	if err := cs1.release(); err != nil {
		t.Fatal(err)
	}
	if err := cs1.close(); err != nil {
		t.Fatal(err)
	}

	cs2, err := openCounter("file", dir, 0, 2, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if cs2.sharded.Reclaimed() == 0 {
		t.Fatal("restarted counter adopted no released leases")
	}
	// 40 issued + the adopted remainders + fresh blocks must tile the
	// keyspace from 1 with no hole: every leased block is either fully
	// issued or re-offered, never abandoned.
	const total = 2 * counterBlockSize
	for i := 40; i < total; i++ {
		idx, err := cs2.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across clean restart", idx)
		}
		issued[idx] = true
	}
	for i := int64(1); i <= total; i++ {
		if !issued[i] {
			t.Fatalf("index %d burned: clean shutdown left a gap in 1..%d", i, total)
		}
	}
}

// A dynamic-membership frontend boots against live replicas, issues
// under its bootstrap view, and releases its remainders into the
// membership journal on shutdown, so a restart adopts them back.
func TestOpenCounterMembershipBootAndRelease(t *testing.T) {
	urls := ""
	for i := 0; i < 3; i++ {
		srv, err := replicanet.Serve(replicanet.NewNode(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		if i > 0 {
			urls += ","
		}
		urls += srv.URL()
	}
	dir := t.TempDir()
	boot := "g1=http://fe1.example,g2=http://fe2.example"
	cs1, err := openCounter("mem", dir, 0, 2, urls, "", "g1", boot, "tok")
	if err != nil {
		t.Fatal(err)
	}
	if cs1.manager == nil {
		t.Fatal("membership frontend built no manager")
	}
	if st := cs1.manager.State(); st.View.Epoch != 1 || len(st.View.Groups) != 2 {
		t.Fatalf("boot state = %+v, want epoch 1 with 2 groups", st)
	}
	issued := make(map[int64]bool)
	for i := 0; i < 10; i++ {
		idx, err := cs1.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		issued[idx] = true
	}
	if err := cs1.release(); err != nil {
		t.Fatal(err)
	}
	if err := cs1.close(); err != nil {
		t.Fatal(err)
	}

	cs2, err := openCounter("mem", dir, 0, 2, urls, "", "g1", boot, "tok")
	if err != nil {
		t.Fatal(err)
	}
	if cs2.sharded.Reclaimed() == 0 {
		t.Fatal("restarted membership frontend adopted no released leases")
	}
	for i := 0; i < 20; i++ {
		idx, err := cs2.counter.Next()
		if err != nil {
			t.Fatal(err)
		}
		if issued[idx] {
			t.Fatalf("index %d issued twice across membership restart", idx)
		}
		issued[idx] = true
	}
}

func TestValidateFlagsMembership(t *testing.T) {
	peers3 := "http://a:1,http://b:2,http://c:3"
	boot := "g1=http://a:8546,g2=http://b:8546"
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "", "g1", boot); err != nil {
		t.Errorf("membership frontend flags rejected: %v", err)
	}
	if err := validateFlags(":8546", "", 4, 0, "", "", "", "g1", boot); err == nil {
		t.Error("-group-name without -peers accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "", "g1", ""); err == nil {
		t.Error("-group-name without -initial-groups accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "0/2", "g1", boot); err == nil {
		t.Error("-group and -group-name together accepted")
	}
	if err := validateFlags(":8546", "", 4, 0, "", peers3, "", "", boot); err == nil {
		t.Error("-initial-groups without -group-name accepted")
	}
	if err := validateFlags(":9001", "", 4, 0, "sale", "", "", "g1", boot); err == nil {
		t.Error("-group-name in replica mode accepted")
	}
	for _, bad := range []string{"g1", "g1=", "=http://x", "g1=http://a,g1=http://b", " , "} {
		if err := validateFlags(":8546", "", 4, 0, "", peers3, "", "g1", bad); err == nil {
			t.Errorf("-initial-groups %q accepted", bad)
		}
	}
	// Entry order must not matter: sorted views give identical slots.
	g1, _, err := parseInitialGroups("b=http://b,a=http://a")
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := parseInitialGroups("a=http://a,b=http://b")
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("group order depends on flag order: %v vs %v", g1, g2)
		}
	}
}
