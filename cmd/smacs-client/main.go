// Command smacs-client requests a token from a running Token Service over
// HTTP and prints the 86-byte token (hex) ready to embed in a transaction.
//
// Usage:
//
//	smacs-client -ts http://127.0.0.1:8546 -type super \
//	             -contract 0x01.. -sender 0xc1..
//	smacs-client -ts ... -type method -contract 0x.. -sender 0x.. \
//	             -method "withdraw()"
//	smacs-client -ts ... -type argument -contract 0x.. -sender 0x.. \
//	             -method transfer -arg to:address:0xdd.. -arg amount:uint256:42 \
//	             -one-time
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/tshttp"
	"repro/internal/types"
)

// argFlags collects repeated -arg name:kind:value flags.
type argFlags []tshttp.WireArg

func (a *argFlags) String() string { return fmt.Sprintf("%v", []tshttp.WireArg(*a)) }

func (a *argFlags) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want name:kind:value, got %q", s)
	}
	*a = append(*a, tshttp.WireArg{Name: parts[0], Kind: parts[1], Value: parts[2]})
	return nil
}

func main() {
	var (
		tsURL    = flag.String("ts", "http://127.0.0.1:8546", "Token Service base URL")
		tpName   = flag.String("type", "super", "token type: super | method | argument")
		contract = flag.String("contract", "", "target contract address (cAddr)")
		sender   = flag.String("sender", "", "client account address (sAddr)")
		method   = flag.String("method", "", "method name or canonical signature (methodId)")
		oneTime  = flag.Bool("one-time", false, "request the one-time property")
		args     argFlags
	)
	flag.Var(&args, "arg", "argument as name:kind:value (repeatable; kinds: address, uint256, bool, bytes, string)")
	flag.Parse()

	if err := run(*tsURL, *tpName, *contract, *sender, *method, *oneTime, args); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-client:", err)
		os.Exit(1)
	}
}

func run(tsURL, tpName, contract, sender, method string, oneTime bool, args argFlags) error {
	cAddr, err := types.HexToAddress(contract)
	if err != nil {
		return fmt.Errorf("-contract: %w", err)
	}
	sAddr, err := types.HexToAddress(sender)
	if err != nil {
		return fmt.Errorf("-sender: %w", err)
	}
	var tp core.TokenType
	switch strings.ToLower(tpName) {
	case "super":
		tp = core.SuperType
	case "method":
		tp = core.MethodType
	case "argument":
		tp = core.ArgumentType
	default:
		return fmt.Errorf("-type: unknown token type %q", tpName)
	}

	req := &core.Request{
		Type:     tp,
		Contract: cAddr,
		Sender:   sAddr,
		Method:   method,
		OneTime:  oneTime,
	}
	for _, a := range args {
		v, err := tshttp.DecodeArg(a)
		if err != nil {
			return err
		}
		req.Args = append(req.Args, core.NamedArg{Name: a.Name, Value: v})
	}

	client := tshttp.NewClient(tsURL, "")
	info, err := client.Info()
	if err != nil {
		return fmt.Errorf("reach token service: %w", err)
	}
	tk, err := client.RequestToken(req)
	if err != nil {
		return err
	}
	fmt.Printf("token service:  %s\n", info.Address)
	fmt.Printf("token type:     %s\n", tk.Type)
	fmt.Printf("expires:        %s\n", tk.Expire.UTC().Format("2006-01-02 15:04:05 MST"))
	if tk.OneTime() {
		fmt.Printf("one-time index: %d\n", tk.Index)
	}
	fmt.Printf("token (hex):    %s\n", hex.EncodeToString(tk.Encode()))
	return nil
}
