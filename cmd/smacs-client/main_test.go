package main

import (
	"net/http/httptest"
	"testing"

	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/tshttp"
)

func TestArgFlagsParsing(t *testing.T) {
	var args argFlags
	good := []string{
		"to:address:0x0000000000000000000000000000000000000001",
		"amount:uint256:42",
		"note:string:hello:world", // value may itself contain colons
	}
	for _, g := range good {
		if err := args.Set(g); err != nil {
			t.Errorf("Set(%q): %v", g, err)
		}
	}
	if len(args) != 3 {
		t.Fatalf("parsed %d args", len(args))
	}
	if args[2].Value != "hello:world" {
		t.Errorf("colon-containing value mangled: %q", args[2].Value)
	}
	if err := args.Set("missing-kind"); err == nil {
		t.Error("malformed -arg accepted")
	}
	if args.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunAgainstLiveService(t *testing.T) {
	svc, err := ts.New(ts.Config{Key: secp256k1.PrivateKeyFromSeed([]byte("cli test"))})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tshttp.NewServer(svc, "").Handler())
	defer srv.Close()

	err = run(srv.URL, "method",
		"0x0000000000000000000000000000000000000001",
		"0x00000000000000000000000000000000000000c1",
		"withdraw()", false, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// Argument token with typed args.
	var args argFlags
	if err := args.Set("n:uint256:7"); err != nil {
		t.Fatal(err)
	}
	err = run(srv.URL, "argument",
		"0x0000000000000000000000000000000000000001",
		"0x00000000000000000000000000000000000000c1",
		"act", true, args)
	if err != nil {
		t.Fatalf("argument run: %v", err)
	}

	// Bad inputs surface as errors.
	if err := run(srv.URL, "bogus-type", "0x01", "0xc1", "", false, nil); err == nil {
		t.Error("unknown token type accepted")
	}
	if err := run(srv.URL, "super", "not-hex!", "0xc1", "", false, nil); err == nil {
		t.Error("bad contract address accepted")
	}
	if err := run("http://127.0.0.1:1", "super",
		"0x0000000000000000000000000000000000000001",
		"0x00000000000000000000000000000000000000c1", "", false, nil); err == nil {
		t.Error("unreachable service not reported")
	}
}
