package main

import (
	"strings"
	"testing"
)

// Flag combinations must be rejected up front — an unknown scenario or
// sweep-mode entry exits with a usage message instead of being silently
// ignored (or worse, discovered after minutes of completed cells).
func TestValidateSelection(t *testing.T) {
	tests := []struct {
		name       string
		mode       string
		scenario   string
		modes      string
		chainModes string
		smoke      bool
		envelope   string
		writeEnv   string
		wantErr    string // "" = valid
	}{
		{name: "paper tables", mode: ""},
		{name: "load defaults", mode: "load"},
		{name: "load subset", mode: "load", modes: "locked,sharded"},
		{name: "chain subset", mode: "chain", chainModes: "naive,batched"},
		{name: "e2e defaults", mode: "e2e"},
		{name: "e2e all", mode: "e2e", scenario: "all", smoke: true},
		{name: "e2e subset", mode: "e2e", scenario: "adversarial,mixed", smoke: true, envelope: "out/e2e-envelope.json"},

		{name: "unknown mode", mode: "warp", wantErr: `unknown -mode "warp"`},
		{name: "unknown scenario", mode: "e2e", scenario: "bogus", wantErr: `unknown -scenario entry "bogus"`},
		{name: "scenario outside e2e", mode: "load", scenario: "mixed", wantErr: "-scenario requires -mode e2e"},
		{name: "scenario all outside e2e", mode: "load", scenario: "all", wantErr: "-scenario requires -mode e2e"},
		{name: "smoke outside e2e", mode: "chain", smoke: true, wantErr: "-smoke requires -mode e2e"},
		{name: "envelope outside e2e", mode: "", envelope: "x.json", wantErr: "-envelope requires -mode e2e"},
		{name: "write-envelope outside e2e", mode: "load", writeEnv: "x.json", wantErr: "-write-envelope requires -mode e2e"},
		{name: "unknown load mode", mode: "load", modes: "locked,turbo", wantErr: `unknown -modes entry "turbo"`},
		{name: "modes outside load", mode: "chain", modes: "locked", wantErr: "-modes requires -mode load"},
		{name: "unknown chain mode", mode: "chain", chainModes: "warp", wantErr: `unknown -chainmodes entry "warp"`},
		{name: "chainmodes outside chain", mode: "e2e", chainModes: "naive", wantErr: "-chainmodes requires -mode chain"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateSelection(tt.mode, tt.scenario, tt.modes, tt.chainModes, tt.smoke, tt.envelope, tt.writeEnv)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}
