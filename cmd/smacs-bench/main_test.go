package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestMain lets this test binary impersonate the smacs-bench CLI: when
// SMACS_BENCH_BE_MAIN is set, it rewrites os.Args from SMACS_BENCH_ARGS
// and runs main() instead of the tests. The SIGINT test below re-execs
// itself through this hook, so the real signal handler is exercised in a
// real child process without a separate go build step.
func TestMain(m *testing.M) {
	if os.Getenv("SMACS_BENCH_BE_MAIN") == "1" {
		os.Args = append([]string{"smacs-bench"}, strings.Fields(os.Getenv("SMACS_BENCH_ARGS"))...)
		main()
		return
	}
	os.Exit(m.Run())
}

// A SIGINT mid-sweep must exit with status 130 AND leave a valid partial
// CSV behind — the regression was an interrupt discarding every completed
// cell. The child runs a load sweep sized so that at interrupt time some
// cells are finished and some are not.
func TestSIGINTFlushesPartialResults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-second child sweep")
	}
	csvPath := filepath.Join(t.TempDir(), "partial.csv")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SMACS_BENCH_BE_MAIN=1",
		// 4 modes × 2 worker counts ≈ 8 cells of ~1.1 s each: far from
		// done when the interrupt lands, with several cells completed.
		"SMACS_BENCH_ARGS=-mode load -workers 1,2 -duration 1s -warmup 100ms -rtt 0 -bench-json= -csv "+csvPath,
	)
	var output strings.Builder
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Enough wall clock for ≥2 cells; the sweep needs ~9 s in total.
	time.Sleep(3 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal: %v", err)
	}
	err := cmd.Wait()
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child did not exit with an error status (err=%v); output:\n%s", err, output.String())
	}
	if code := exitErr.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130; output:\n%s", code, output.String())
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("interrupt flushed no CSV: %v; output:\n%s", err, output.String())
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("partial CSV has %d lines, want header plus ≥1 completed row:\n%s", len(lines), raw)
	}
	if !strings.HasPrefix(lines[0], "mode,workers") {
		t.Fatalf("partial CSV header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if cells := strings.Split(line, ","); len(cells) != len(strings.Split(lines[0], ",")) {
			t.Fatalf("ragged partial CSV row %q", line)
		}
	}
	if !strings.Contains(output.String(), "flushing completed rows") {
		t.Errorf("child did not announce the partial flush; output:\n%s", output.String())
	}
}

// The trajectory artifact must carry the mode, a timestamp, and the full
// sweep result; -bench-json resolution maps "auto" to out/BENCH_<mode>.json
// and "" to no artifact at all.
func TestBenchArtifact(t *testing.T) {
	if got := benchArtifactPath("auto", "e2e"); got != filepath.Join("out", "BENCH_e2e.json") {
		t.Errorf("auto path = %q", got)
	}
	if got := benchArtifactPath("", "load"); got != "" {
		t.Errorf("disabled path = %q", got)
	}
	if got := benchArtifactPath("custom.json", "load"); got != "custom.json" {
		t.Errorf("explicit path = %q", got)
	}
	if err := writeBenchArtifact("", "load", nil); err != nil {
		t.Fatalf("disabled artifact should be a no-op, got %v", err)
	}

	path := filepath.Join(t.TempDir(), "nested", "BENCH_e2e.json")
	res := &bench.E2EResult{Rows: []bench.E2ERow{{Scenario: "quickstart"}}}
	if err := writeBenchArtifact(path, "e2e", res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Mode      string `json:"mode"`
		Timestamp string `json:"timestamp"`
		Result    struct {
			Rows []struct {
				Scenario string `json:"scenario"`
			} `json:"rows"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, raw)
	}
	if art.Mode != "e2e" {
		t.Errorf("mode = %q", art.Mode)
	}
	if _, err := time.Parse(time.RFC3339, art.Timestamp); err != nil {
		t.Errorf("timestamp %q: %v", art.Timestamp, err)
	}
	if len(art.Result.Rows) != 1 || art.Result.Rows[0].Scenario != "quickstart" {
		t.Errorf("result rows = %+v", art.Result.Rows)
	}
}

// Flag combinations must be rejected up front — an unknown scenario or
// sweep-mode entry exits with a usage message instead of being silently
// ignored (or worse, discovered after minutes of completed cells).
func TestValidateSelection(t *testing.T) {
	tests := []struct {
		name       string
		mode       string
		scenario   string
		modes      string
		chainModes string
		smoke      bool
		envelope   string
		writeEnv   string
		store      string // "" maps to the "mem" flag default
		dir        string
		fsyncBatch int
		benchJSON  string // "" maps to the "auto" flag default
		trace      string
		sched      string
		dump       string
		wantErr    string // "" = valid
	}{
		{name: "paper tables", mode: ""},
		{name: "load defaults", mode: "load"},
		{name: "load subset", mode: "load", modes: "locked,sharded"},
		{name: "chain subset", mode: "chain", chainModes: "naive,batched"},
		{name: "e2e defaults", mode: "e2e"},
		{name: "e2e all", mode: "e2e", scenario: "all", smoke: true},
		{name: "e2e subset", mode: "e2e", scenario: "adversarial,mixed", smoke: true, envelope: "out/e2e-envelope.json"},
		{name: "shard defaults", mode: "shard"},

		{name: "unknown mode", mode: "warp", wantErr: `unknown -mode "warp"`},
		{name: "unknown scenario", mode: "e2e", scenario: "bogus", wantErr: `unknown -scenario entry "bogus"`},
		{name: "scenario outside e2e", mode: "load", scenario: "mixed", wantErr: "-scenario requires -mode e2e"},
		{name: "scenario all outside e2e", mode: "load", scenario: "all", wantErr: "-scenario requires -mode e2e"},
		{name: "smoke outside e2e", mode: "chain", smoke: true, wantErr: "-smoke requires -mode e2e"},
		{name: "envelope outside e2e", mode: "", envelope: "x.json", wantErr: "-envelope requires -mode e2e"},
		{name: "write-envelope outside e2e", mode: "load", writeEnv: "x.json", wantErr: "-write-envelope requires -mode e2e"},
		{name: "unknown load mode", mode: "load", modes: "locked,turbo", wantErr: `unknown -modes entry "turbo"`},
		{name: "modes outside load", mode: "chain", modes: "locked", wantErr: "-modes requires -mode load"},
		{name: "unknown chain mode", mode: "chain", chainModes: "warp", wantErr: `unknown -chainmodes entry "warp"`},
		{name: "chainmodes outside chain", mode: "e2e", chainModes: "naive", wantErr: "-chainmodes requires -mode chain"},

		{name: "load file store", mode: "load", store: "file", dir: "/tmp/w", fsyncBatch: 16},
		{name: "e2e durable dir", mode: "e2e", scenario: "durable", smoke: true, dir: "/tmp/w", fsyncBatch: 128},
		{name: "unknown store", mode: "load", store: "tape", wantErr: `unknown -store "tape"`},
		{name: "file store outside load", mode: "chain", store: "file", wantErr: "-store file requires -mode load"},
		{name: "dir without file store", mode: "load", dir: "/tmp/w", wantErr: "-dir requires -store file or -mode e2e"},
		{name: "fsync-batch without file store", mode: "chain", fsyncBatch: 8, wantErr: "-fsync-batch requires -store file or -mode e2e"},
		{name: "negative fsync-batch", mode: "load", store: "file", fsyncBatch: -1, wantErr: "-fsync-batch must be ≥ 0"},

		{name: "e2e trace", mode: "e2e", smoke: true, trace: "out/trace.json"},
		{name: "trace outside e2e", mode: "load", trace: "out/trace.json", wantErr: "-trace requires -mode e2e"},
		{name: "bench-json auto in paper mode", mode: ""}, // default degrades silently
		{name: "explicit bench-json", mode: "chain", benchJSON: "out/BENCH_chain.json"},
		{name: "bench-json outside sweep modes", mode: "", benchJSON: "x.json", wantErr: "-bench-json requires -mode"},
		{name: "smoke outside e2e (shard)", mode: "shard", smoke: true, wantErr: "-smoke requires -mode e2e"},

		{name: "optimistic chain mode", mode: "chain", chainModes: "cached,optimistic"},
		{name: "e2e sched", mode: "e2e", smoke: true, sched: "optimistic"},
		{name: "unknown sched", mode: "e2e", sched: "warp", wantErr: `unknown scheduler "warp"`},
		{name: "sched outside e2e", mode: "chain", sched: "serial", wantErr: "-sched requires -mode e2e"},
		{name: "chain metrics dump", mode: "chain", dump: "out/metrics.prom"},
		{name: "metrics dump outside chain", mode: "e2e", dump: "out/metrics.prom", wantErr: "-metrics-dump requires -mode chain"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			store := tt.store
			if store == "" {
				store = "mem"
			}
			benchJSON := tt.benchJSON
			if benchJSON == "" {
				benchJSON = "auto"
			}
			err := validateSelection(tt.mode, tt.scenario, tt.modes, tt.chainModes, tt.smoke, tt.envelope, tt.writeEnv, store, tt.dir, tt.fsyncBatch, benchJSON, tt.trace, tt.sched, tt.dump)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}
