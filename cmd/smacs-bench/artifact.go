package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// benchArtifact is the per-commit benchmark trajectory record: one sweep
// result stamped with the mode, the commit it measured, and when. CI
// uploads these as BENCH_<mode>.json workflow artifacts, so plotting
// throughput or latency over the repo's history is a download plus jq —
// no re-running old commits.
type benchArtifact struct {
	Mode string `json:"mode"`
	// GitSHA is the vcs.revision the binary was built from (omitted when
	// the build carried no VCS stamp, e.g. `go run` of a dirty checkout
	// with -buildvcs=false).
	GitSHA string `json:"gitSHA,omitempty"`
	// Dirty marks a build from a checkout with uncommitted changes: the
	// numbers then measure GitSHA plus unknown local edits.
	Dirty     bool   `json:"dirty,omitempty"`
	Timestamp string `json:"timestamp"`
	Result    any    `json:"result"`
}

// buildRevision reads the VCS stamp the Go toolchain embeds at build
// time; shelling out to git would misattribute a binary measured from a
// different checkout than the one it was built from.
func buildRevision() (sha string, dirty bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return sha, dirty
}

// benchArtifactPath resolves the -bench-json flag: "auto" places the
// artifact at out/BENCH_<mode>.json, "" disables it, anything else is an
// explicit path.
func benchArtifactPath(benchJSON, mode string) string {
	switch benchJSON {
	case "":
		return ""
	case "auto":
		return filepath.Join("out", "BENCH_"+mode+".json")
	default:
		return benchJSON
	}
}

// writeBenchArtifact stamps res and writes it to path, creating the
// parent directory so the default out/ location works on a fresh clone.
func writeBenchArtifact(path, mode string, res sweepResult) error {
	if path == "" {
		return nil
	}
	sha, dirty := buildRevision()
	art := benchArtifact{
		Mode:      mode,
		GitSHA:    sha,
		Dirty:     dirty,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Result:    res,
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench artifact: %w", err)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
	return nil
}
