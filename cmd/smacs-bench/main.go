// Command smacs-bench regenerates the paper's evaluation tables and
// figures (§ VI) and prints them in the paper's layout, and runs the
// concurrent-issuance load generator beyond the paper's single-threaded
// measurements.
//
// Usage:
//
//	smacs-bench -all             # everything (Fig. 9 up to 10^5 requests)
//	smacs-bench -all -quick      # everything, smaller workloads
//	smacs-bench -table 2         # Tab. II only (also: 3, 4)
//	smacs-bench -figure 8        # Fig. 8 only (also: 9)
//	smacs-bench -tools           # § VI-B runtime-verification throughput
//	smacs-bench -baseline        # E7 on-chain whitelist baseline
//	smacs-bench -mode load       # concurrent-issuance load sweep
//	smacs-bench -mode load -workers 1,4,8 -duration 2s -warmup 250ms \
//	    -batch 32 -csv out/load.csv
//	smacs-bench -mode chain      # guarded-tx verification-pipeline sweep
//	smacs-bench -mode chain -txs 192 -senders 16 -workers 1,4,8 \
//	    -chainmodes naive,wnaf,cached,batched -csv out/chain.csv
//	smacs-bench -mode e2e        # end-to-end scenarios (HTTP TS → clients → chain)
//	smacs-bench -mode e2e -scenario adversarial -smoke
//	smacs-bench -mode e2e -smoke -envelope out/e2e-envelope.json   # CI gate
//
// Flag combinations are validated up front: an unknown -scenario, or
// unknown entries in -modes/-chainmodes, exit with status 2 and a usage
// message instead of being silently ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (2, 3, or 4)")
		figure   = flag.Int("figure", 0, "regenerate one figure (8 or 9)")
		tools    = flag.Bool("tools", false, "regenerate the § VI-B tool measurements")
		baseline = flag.Bool("baseline", false, "run the on-chain whitelist baseline (E7)")
		missrate = flag.Bool("missrate", false, "run the § IV-C bitmap-size vs miss-rate tradeoff")
		all      = flag.Bool("all", false, "regenerate everything")
		quick    = flag.Bool("quick", false, "smaller workloads (Fig. 9 to 10^3, baseline to 1000)")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of the paper-layout tables")

		mode     = flag.String("mode", "", `"load" runs the concurrent-issuance load generator; "chain" runs the guarded-tx verification-pipeline sweep; "e2e" runs the end-to-end scenario harness`)
		workers  = flag.String("workers", "1,2,4,8", "load/chain: comma-separated worker counts to sweep")
		duration = flag.Duration("duration", 2*time.Second, "load: measured interval per cell")
		warmup   = flag.Duration("warmup", 250*time.Millisecond, "load: unmeasured warmup per cell")
		onetime  = flag.Bool("onetime", true, "load: request one-time tokens (exercises the counter)")
		rtt      = flag.Duration("rtt", time.Millisecond, "load: modeled quorum round-trip per index allocation (0 = in-process counter)")
		batch    = flag.Int("batch", 32, "load: requests per IssueBatch call; chain: txs per ApplyBatch call")
		modes    = flag.String("modes", "", "load: comma-separated subset of locked,atomic,sharded,batch")
		csvPath  = flag.String("csv", "", "load/chain: also write the sweep as CSV to this path")

		txs        = flag.Int("txs", 192, "chain: guarded transactions per cell")
		senders    = flag.Int("senders", 16, "chain: distinct client accounts")
		chainModes = flag.String("chainmodes", "", "chain: comma-separated subset of naive,wnaf,cached,batched")

		scenario      = flag.String("scenario", "", "e2e: comma-separated subset of "+strings.Join(bench.ScenarioNames(), ",")+` (or "all", the default)`)
		smoke         = flag.Bool("smoke", false, "e2e: small deterministic sizing (the scale the CI envelope pins)")
		envelopePath  = flag.String("envelope", "", "e2e: compare correctness counts against this envelope JSON and fail on drift")
		writeEnvelope = flag.String("write-envelope", "", "e2e: write the run's correctness counts as an envelope JSON to this path")
	)
	flag.Parse()

	if err := validateSelection(*mode, *scenario, *modes, *chainModes, *smoke, *envelopePath, *writeEnvelope); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
		flag.Usage()
		os.Exit(2)
	}

	if *mode != "" {
		var err error
		switch *mode {
		case "load":
			err = runLoad(*workers, *duration, *warmup, *onetime, *rtt, *batch, *modes, *csvPath, *asJSON)
		case "chain":
			err = runChain(*workers, *txs, *senders, *batch, *chainModes, *csvPath, *asJSON)
		case "e2e":
			err = runE2E(*scenario, *smoke, *envelopePath, *writeEnvelope, *csvPath, *asJSON)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smacs-bench:", err)
			os.Exit(1)
		}
		return
	}

	if !*all && *table == 0 && *figure == 0 && !*tools && !*baseline && !*missrate {
		*all = true
	}
	if err := run(*table, *figure, *tools, *baseline, *missrate, *all, *quick, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
		os.Exit(1)
	}
}

// validateSelection rejects inconsistent flag combinations before any
// measurement runs: unknown modes, unknown -scenario / -modes /
// -chainmodes entries, and e2e-only flags outside -mode e2e. Catching
// these up front means a typo exits with a usage message instead of
// silently discarding minutes of completed sweep cells.
func validateSelection(mode, scenario, modes, chainModes string, smoke bool, envelopePath, writeEnvelope string) error {
	switch mode {
	case "", "load", "chain", "e2e":
	default:
		return fmt.Errorf("unknown -mode %q (supported: load, chain, e2e)", mode)
	}
	checkEntries := func(flagName, entries string, supported []string) error {
		valid := make(map[string]bool, len(supported))
		for _, s := range supported {
			valid[s] = true
		}
		for _, entry := range splitModes(entries) {
			if !valid[entry] {
				return fmt.Errorf("unknown %s entry %q (supported: %s)",
					flagName, entry, strings.Join(supported, ", "))
			}
		}
		return nil
	}
	if scenario != "" {
		if mode != "e2e" {
			return fmt.Errorf("-scenario requires -mode e2e")
		}
		if scenario != "all" {
			if err := checkEntries("-scenario", scenario, bench.ScenarioNames()); err != nil {
				return err
			}
		}
	}
	if mode != "e2e" {
		if smoke {
			return fmt.Errorf("-smoke requires -mode e2e")
		}
		if envelopePath != "" {
			return fmt.Errorf("-envelope requires -mode e2e")
		}
		if writeEnvelope != "" {
			return fmt.Errorf("-write-envelope requires -mode e2e")
		}
	}
	if modes != "" {
		if mode != "load" {
			return fmt.Errorf("-modes requires -mode load")
		}
		if err := checkEntries("-modes", modes, bench.LoadModes); err != nil {
			return err
		}
	}
	if chainModes != "" {
		if mode != "chain" {
			return fmt.Errorf("-chainmodes requires -mode chain")
		}
		if err := checkEntries("-chainmodes", chainModes, bench.ChainModes); err != nil {
			return err
		}
	}
	return nil
}

func parseWorkers(workers string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(workers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -workers entry %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func splitModes(modes string) []string {
	var out []string
	for _, m := range strings.Split(modes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// sweepResult is the common shape of the load and chain sweeps: a table
// renderer plus a CSV dump.
type sweepResult interface {
	Format() string
	CSV() string
}

// emitSweep prints a sweep (table or JSON) and optionally writes its CSV.
func emitSweep(res sweepResult, csvPath string, asJSON bool) error {
	if asJSON {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	} else {
		fmt.Println(res.Format())
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(res.CSV()), 0o644); err != nil {
			return fmt.Errorf("write CSV: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", csvPath)
	}
	return nil
}

func runChain(workers string, txs, senders, batch int, modes, csvPath string, asJSON bool) error {
	cfg := bench.ChainConfig{
		Txs:       txs,
		Senders:   senders,
		BatchSize: batch,
		Modes:     splitModes(modes),
	}
	var err error
	if cfg.Workers, err = parseWorkers(workers); err != nil {
		return err
	}
	res, err := bench.Chain(cfg)
	if err != nil {
		return err
	}
	return emitSweep(res, csvPath, asJSON)
}

func runLoad(workers string, duration, warmup time.Duration, onetime bool, rtt time.Duration, batch int, modes, csvPath string, asJSON bool) error {
	cfg := bench.LoadConfig{
		Duration:  duration,
		Warmup:    warmup,
		OneTime:   onetime,
		BatchSize: batch,
		RTT:       rtt,
	}
	var err error
	if cfg.Workers, err = parseWorkers(workers); err != nil {
		return err
	}
	cfg.Modes = splitModes(modes)
	res, err := bench.Load(cfg)
	if err != nil {
		return err
	}
	return emitSweep(res, csvPath, asJSON)
}

// runE2E drives the end-to-end scenario harness and, when asked, writes
// or checks the correctness-count envelope. An envelope mismatch is an
// error, so CI fails the build on functional drift in the full pipeline.
func runE2E(scenario string, smoke bool, envelopePath, writeEnvelope, csvPath string, asJSON bool) error {
	if scenario == "all" {
		scenario = ""
	}
	res, err := bench.E2E(bench.E2EConfig{Scenarios: splitModes(scenario), Smoke: smoke})
	if err != nil {
		return err
	}
	if err := emitSweep(res, csvPath, asJSON); err != nil {
		return err
	}
	if writeEnvelope != "" {
		enc, err := json.MarshalIndent(res.Envelope(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(writeEnvelope, append(enc, '\n'), 0o644); err != nil {
			return fmt.Errorf("write envelope: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", writeEnvelope)
	}
	if envelopePath != "" {
		raw, err := os.ReadFile(envelopePath)
		if err != nil {
			return fmt.Errorf("read envelope: %w", err)
		}
		var env bench.Envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			return fmt.Errorf("parse envelope %s: %w", envelopePath, err)
		}
		if err := res.CheckEnvelope(&env); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "envelope check passed:", envelopePath)
	}
	return nil
}

func run(table, figure int, tools, baseline, missrate, all, quick, asJSON bool) error {
	type job struct {
		enabled bool
		run     func() (interface{ Format() string }, error)
	}
	fig9Exp := 5
	baselineSizes := []int{100, 1000, 7473, 10000}
	toolReqs := 100
	missTokens := 2000
	if quick {
		fig9Exp = 3
		baselineSizes = []int{100, 1000}
		toolReqs = 25
		missTokens = 500
	}
	jobs := []job{
		{all || table == 2, func() (interface{ Format() string }, error) { return bench.TableII() }},
		{all || table == 3, func() (interface{ Format() string }, error) { return bench.TableIII() }},
		{all || table == 4, func() (interface{ Format() string }, error) { return bench.TableIV() }},
		{all || figure == 8, func() (interface{ Format() string }, error) { return bench.Figure8() }},
		{all || figure == 9, func() (interface{ Format() string }, error) { return bench.Figure9(fig9Exp) }},
		{all || tools, func() (interface{ Format() string }, error) { return bench.RuntimeTools(toolReqs) }},
		{all || baseline, func() (interface{ Format() string }, error) { return bench.Baseline(baselineSizes) }},
		{all || missrate, func() (interface{ Format() string }, error) {
			return bench.MissRate(missTokens, 35, 60, nil)
		}},
	}
	ran := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		res, err := j.run()
		if err != nil {
			return err
		}
		if asJSON {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(enc))
		} else {
			fmt.Println(res.Format())
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected: table=%d figure=%d", table, figure)
	}
	return nil
}
