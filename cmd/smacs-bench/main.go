// Command smacs-bench regenerates the paper's evaluation tables and
// figures (§ VI) and prints them in the paper's layout, and runs the
// concurrent-issuance load generator beyond the paper's single-threaded
// measurements.
//
// Usage:
//
//	smacs-bench -all             # everything (Fig. 9 up to 10^5 requests)
//	smacs-bench -all -quick      # everything, smaller workloads
//	smacs-bench -table 2         # Tab. II only (also: 3, 4)
//	smacs-bench -figure 8        # Fig. 8 only (also: 9)
//	smacs-bench -tools           # § VI-B runtime-verification throughput
//	smacs-bench -baseline        # E7 on-chain whitelist baseline
//	smacs-bench -mode load       # concurrent-issuance load sweep
//	smacs-bench -mode load -workers 1,4,8 -duration 2s -warmup 250ms \
//	    -batch 32 -csv out/load.csv
//	smacs-bench -mode chain      # guarded-tx verification-pipeline sweep
//	smacs-bench -mode chain -txs 192 -senders 16 -workers 1,4,8 \
//	    -chainmodes naive,wnaf,cached,batched -csv out/chain.csv
//	smacs-bench -mode load -store file -fsync-batch 16   # durable WAL-backed counter
//	smacs-bench -mode e2e        # end-to-end scenarios (HTTP TS → clients → chain)
//	smacs-bench -mode e2e -scenario adversarial -smoke
//	smacs-bench -mode e2e -scenario durable -smoke       # crash + WAL recovery mid-run
//	smacs-bench -mode e2e -smoke -envelope out/e2e-envelope.json   # CI gate
//	smacs-bench -mode e2e -smoke -trace out/trace.json   # sampled stage traces
//	smacs-bench -mode shard      # sharded-issuance scaling over replica groups
//	smacs-bench -mode shard -groups 1,2,4 -clients 16 -ops 60 -rtt 10ms \
//	    -csv out/shard.csv
//
// Every sweep mode also writes a git-SHA-stamped trajectory artifact
// (out/BENCH_<mode>.json by default; see -bench-json) so CI can archive
// per-commit performance without re-running old commits.
//
// Flag combinations are validated up front: an unknown -scenario, or
// unknown entries in -modes/-chainmodes, exit with status 2 and a usage
// message instead of being silently ignored.
//
// Interrupting a sweep (SIGINT/SIGTERM) flushes every completed row as a
// valid partial table/JSON — and partial CSV when -csv is set — before
// exiting with status 130, so long sweeps never discard finished cells.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (2, 3, or 4)")
		figure   = flag.Int("figure", 0, "regenerate one figure (8 or 9)")
		tools    = flag.Bool("tools", false, "regenerate the § VI-B tool measurements")
		baseline = flag.Bool("baseline", false, "run the on-chain whitelist baseline (E7)")
		missrate = flag.Bool("missrate", false, "run the § IV-C bitmap-size vs miss-rate tradeoff")
		all      = flag.Bool("all", false, "regenerate everything")
		quick    = flag.Bool("quick", false, "smaller workloads (Fig. 9 to 10^3, baseline to 1000)")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of the paper-layout tables")

		mode     = flag.String("mode", "", `"load" runs the concurrent-issuance load generator; "chain" runs the guarded-tx verification-pipeline sweep; "e2e" runs the end-to-end scenario harness; "shard" runs the sharded-issuance scaling sweep over replica-group counts`)
		workers  = flag.String("workers", "1,2,4,8", "load/chain: comma-separated worker counts to sweep")
		duration = flag.Duration("duration", 2*time.Second, "load: measured interval per cell")
		warmup   = flag.Duration("warmup", 250*time.Millisecond, "load: unmeasured warmup per cell")
		onetime  = flag.Bool("onetime", true, "load: request one-time tokens (exercises the counter)")
		rtt      = flag.Duration("rtt", time.Millisecond, "load: modeled quorum round-trip per index allocation (0 = in-process counter); shard: delay injected per replica hop (try 10ms)")
		batch    = flag.Int("batch", 32, "load: requests per IssueBatch call; chain: txs per ApplyBatch call")
		modes    = flag.String("modes", "", "load: comma-separated subset of locked,atomic,sharded,batch")
		csvPath  = flag.String("csv", "", "load/chain/shard: also write the sweep as CSV to this path")

		groups  = flag.String("groups", "1,2,4", "shard: comma-separated replica-group counts to sweep")
		clients = flag.Int("clients", 16, "shard: concurrent wallet clients, routed to groups by the consistent-hash ring")
		ops     = flag.Int("ops", 60, "shard: one-time tokens per client")
		join    = flag.Bool("join", false, "shard: live-resharding cells — a replica group joins mid-run through the membership protocol")

		txs        = flag.Int("txs", 192, "chain: guarded transactions per cell")
		senders    = flag.Int("senders", 32, "chain: distinct client accounts (= -batch ⇒ conflict-light batches, < -batch ⇒ intra-batch conflicts)")
		chainModes = flag.String("chainmodes", "", "chain: comma-separated subset of "+strings.Join(bench.ChainModes, ","))

		sched       = flag.String("sched", "", `e2e: Chain.Execute scheduler for the batch submitter ("serial", "prevalidate", "optimistic"; empty = each scenario's own, normally prevalidate)`)
		metricsDump = flag.String("metrics-dump", "", "chain: after the sweep, write the process metrics registry (Prometheus text format) to this path")

		scenario      = flag.String("scenario", "", "e2e: comma-separated subset of "+strings.Join(bench.ScenarioNames(), ",")+` (or "all", the default)`)
		smoke         = flag.Bool("smoke", false, "e2e: small deterministic sizing (the scale the CI envelope pins)")
		envelopePath  = flag.String("envelope", "", "e2e: compare correctness counts against this envelope JSON and fail on drift")
		writeEnvelope = flag.String("write-envelope", "", "e2e: write the run's correctness counts as an envelope JSON to this path")

		storeKind  = flag.String("store", "mem", `load: counter persistence, "mem" or "file" (a durable WAL-backed store.Counter)`)
		dirPath    = flag.String("dir", "", "load/e2e: directory for file-backed WALs and snapshots (empty: a temp dir)")
		fsyncBatch = flag.Int("fsync-batch", 0, "load/e2e: appends coalesced per fsync in file-backed stores (0: store default)")

		benchJSON = flag.String("bench-json", "auto", `sweep modes: write the sweep as a git-SHA-stamped trajectory artifact ("auto": out/BENCH_<mode>.json, "": disabled, else an explicit path)`)
		tracePath = flag.String("trace", "", "e2e: write sampled per-operation stage traces (token round-trip → batch → commit) as JSON to this path")
	)
	flag.Parse()

	if err := validateSelection(*mode, *scenario, *modes, *chainModes, *smoke, *envelopePath, *writeEnvelope, *storeKind, *dirPath, *fsyncBatch, *benchJSON, *tracePath, *sched, *metricsDump); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
		flag.Usage()
		os.Exit(2)
	}

	if *mode != "" {
		// A SIGINT (or SIGTERM) mid-sweep flushes every completed row as
		// a valid partial table/JSON/CSV before exiting, instead of
		// discarding minutes of finished cells.
		flusher := &partialFlusher{csvPath: *csvPath, asJSON: *asJSON}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			flusher.flush()
			os.Exit(130)
		}()

		benchPath := benchArtifactPath(*benchJSON, *mode)
		var err error
		switch *mode {
		case "load":
			err = runLoad(*workers, *duration, *warmup, *onetime, *rtt, *batch, *modes,
				*storeKind, *dirPath, *fsyncBatch, *csvPath, benchPath, *asJSON, flusher)
		case "chain":
			err = runChain(*workers, *txs, *senders, *batch, *chainModes, *csvPath, benchPath, *metricsDump, *asJSON, flusher)
		case "e2e":
			err = runE2E(*scenario, *smoke, *envelopePath, *writeEnvelope,
				*dirPath, *fsyncBatch, *csvPath, benchPath, *tracePath, *sched, *asJSON, flusher)
		case "shard":
			err = runShard(*groups, *clients, *ops, *batch, *rtt, *join, *csvPath, benchPath, *asJSON, flusher)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smacs-bench:", err)
			os.Exit(1)
		}
		return
	}

	if !*all && *table == 0 && *figure == 0 && !*tools && !*baseline && !*missrate {
		*all = true
	}
	if err := run(*table, *figure, *tools, *baseline, *missrate, *all, *quick, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
		os.Exit(1)
	}
}

// validateSelection rejects inconsistent flag combinations before any
// measurement runs: unknown modes, unknown -scenario / -modes /
// -chainmodes entries, and e2e-only flags outside -mode e2e. Catching
// these up front means a typo exits with a usage message instead of
// silently discarding minutes of completed sweep cells.
func validateSelection(mode, scenario, modes, chainModes string, smoke bool, envelopePath, writeEnvelope, storeKind, dirPath string, fsyncBatch int, benchJSON, tracePath, sched, metricsDump string) error {
	switch mode {
	case "", "load", "chain", "e2e", "shard":
	default:
		return fmt.Errorf("unknown -mode %q (supported: load, chain, e2e, shard)", mode)
	}
	switch storeKind {
	case "mem", "file":
	default:
		return fmt.Errorf("unknown -store %q (supported: mem, file)", storeKind)
	}
	if storeKind == "file" && mode != "load" {
		return fmt.Errorf("-store file requires -mode load (the e2e durable scenario is always file-backed)")
	}
	if dirPath != "" && mode != "e2e" && storeKind != "file" {
		return fmt.Errorf("-dir requires -store file or -mode e2e")
	}
	if fsyncBatch != 0 && mode != "e2e" && storeKind != "file" {
		return fmt.Errorf("-fsync-batch requires -store file or -mode e2e")
	}
	if fsyncBatch < 0 {
		return fmt.Errorf("-fsync-batch must be ≥ 0, got %d", fsyncBatch)
	}
	checkEntries := func(flagName, entries string, supported []string) error {
		valid := make(map[string]bool, len(supported))
		for _, s := range supported {
			valid[s] = true
		}
		for _, entry := range splitModes(entries) {
			if !valid[entry] {
				return fmt.Errorf("unknown %s entry %q (supported: %s)",
					flagName, entry, strings.Join(supported, ", "))
			}
		}
		return nil
	}
	if scenario != "" {
		if mode != "e2e" {
			return fmt.Errorf("-scenario requires -mode e2e")
		}
		if scenario != "all" {
			if err := checkEntries("-scenario", scenario, bench.ScenarioNames()); err != nil {
				return err
			}
		}
	}
	if mode != "e2e" {
		if smoke {
			return fmt.Errorf("-smoke requires -mode e2e")
		}
		if envelopePath != "" {
			return fmt.Errorf("-envelope requires -mode e2e")
		}
		if writeEnvelope != "" {
			return fmt.Errorf("-write-envelope requires -mode e2e")
		}
	}
	if modes != "" {
		if mode != "load" {
			return fmt.Errorf("-modes requires -mode load")
		}
		if err := checkEntries("-modes", modes, bench.LoadModes); err != nil {
			return err
		}
	}
	if chainModes != "" {
		if mode != "chain" {
			return fmt.Errorf("-chainmodes requires -mode chain")
		}
		if err := checkEntries("-chainmodes", chainModes, bench.ChainModes); err != nil {
			return err
		}
	}
	if tracePath != "" && mode != "e2e" {
		return fmt.Errorf("-trace requires -mode e2e")
	}
	if sched != "" {
		if mode != "e2e" {
			return fmt.Errorf("-sched requires -mode e2e (the chain sweep selects schedulers via -chainmodes)")
		}
		if _, err := bench.ParseScheduler(sched); err != nil {
			return err
		}
	}
	if metricsDump != "" && mode != "chain" {
		return fmt.Errorf("-metrics-dump requires -mode chain (e2e scenarios use isolated per-scenario registries)")
	}
	// "auto" is the default and silently degrades to "no artifact" for the
	// paper tables; an explicit path outside the sweep modes is a mistake.
	if benchJSON != "" && benchJSON != "auto" && mode == "" {
		return fmt.Errorf("-bench-json requires -mode load, chain, e2e, or shard")
	}
	return nil
}

func parseWorkers(workers string) ([]int, error) {
	return parseInts("-workers", workers)
}

func parseInts(flagName, list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func splitModes(modes string) []string {
	var out []string
	for _, m := range strings.Split(modes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// sweepResult is the common shape of the load and chain sweeps: a table
// renderer plus a CSV dump.
type sweepResult interface {
	Format() string
	CSV() string
}

// partialFlusher holds a snapshot of the completed sweep rows so the
// signal handler can emit a valid partial result — table or JSON, plus
// the -csv file — when the process is interrupted mid-sweep. The runners
// update it from each sweep's OnRow callback; set copies nothing (each
// snapshot is freshly built by the caller), it only swaps the pointer
// under the mutex the handler reads through.
type partialFlusher struct {
	mu      sync.Mutex
	res     sweepResult
	csvPath string
	asJSON  bool
}

func (p *partialFlusher) set(res sweepResult) {
	p.mu.Lock()
	p.res = res
	p.mu.Unlock()
}

func (p *partialFlusher) flush() {
	p.mu.Lock()
	res := p.res
	p.mu.Unlock()
	if res == nil {
		fmt.Fprintln(os.Stderr, "smacs-bench: interrupted before any sweep row completed")
		return
	}
	fmt.Fprintln(os.Stderr, "smacs-bench: interrupted; flushing completed rows")
	if err := emitSweep(res, p.csvPath, p.asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
	}
}

// emitSweep prints a sweep (table or JSON) and optionally writes its CSV.
func emitSweep(res sweepResult, csvPath string, asJSON bool) error {
	if asJSON {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	} else {
		fmt.Println(res.Format())
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(res.CSV()), 0o644); err != nil {
			return fmt.Errorf("write CSV: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", csvPath)
	}
	return nil
}

func runChain(workers string, txs, senders, batch int, modes, csvPath, benchPath, metricsDump string, asJSON bool, flusher *partialFlusher) error {
	cfg := bench.ChainConfig{
		Txs:       txs,
		Senders:   senders,
		BatchSize: batch,
		Modes:     splitModes(modes),
	}
	var err error
	if cfg.Workers, err = parseWorkers(workers); err != nil {
		return err
	}
	var rows []bench.ChainRow
	cfg.OnRow = func(r bench.ChainRow) {
		rows = append(rows, r)
		flusher.set(&bench.ChainResult{Config: cfg, Rows: append([]bench.ChainRow(nil), rows...)})
	}
	res, err := bench.Chain(cfg)
	if err != nil {
		return err
	}
	if err := emitSweep(res, csvPath, asJSON); err != nil {
		return err
	}
	if metricsDump != "" {
		// The sweep's chains all report into the process-default registry,
		// so this snapshot carries the evm_exec_* families CI asserts on.
		var b strings.Builder
		if err := metrics.Default().WritePrometheus(&b); err != nil {
			return fmt.Errorf("render metrics: %w", err)
		}
		if err := os.WriteFile(metricsDump, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("write metrics dump: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", metricsDump)
	}
	return writeBenchArtifact(benchPath, "chain", res)
}

func runLoad(workers string, duration, warmup time.Duration, onetime bool, rtt time.Duration, batch int, modes, storeKind, dir string, fsyncBatch int, csvPath, benchPath string, asJSON bool, flusher *partialFlusher) error {
	cfg := bench.LoadConfig{
		Duration:   duration,
		Warmup:     warmup,
		OneTime:    onetime,
		BatchSize:  batch,
		RTT:        rtt,
		Store:      storeKind,
		Dir:        dir,
		FsyncBatch: fsyncBatch,
	}
	var err error
	if cfg.Workers, err = parseWorkers(workers); err != nil {
		return err
	}
	cfg.Modes = splitModes(modes)
	var rows []bench.LoadRow
	cfg.OnRow = func(r bench.LoadRow) {
		rows = append(rows, r)
		flusher.set(&bench.LoadResult{Config: cfg, Rows: append([]bench.LoadRow(nil), rows...)})
	}
	res, err := bench.Load(cfg)
	if err != nil {
		return err
	}
	if err := emitSweep(res, csvPath, asJSON); err != nil {
		return err
	}
	return writeBenchArtifact(benchPath, "load", res)
}

// runShard drives the sharded-issuance scaling sweep: for each group
// count G, the one-time token keyspace is split by the consistent-hash
// ring across G independent 3-replica quorum groups (each replica behind
// a -rtt delay proxy), and tokens/s must rise with G. With -join each
// cell instead reshards live: a (G+1)-th group joins mid-run through the
// membership protocol, and the row reports the issuance rate before,
// during, and after the change.
func runShard(groups string, clients, ops, batch int, rtt time.Duration, join bool, csvPath, benchPath string, asJSON bool, flusher *partialFlusher) error {
	cfg := bench.ShardConfig{
		Clients:    clients,
		Ops:        ops,
		TokenBatch: batch,
		RTT:        rtt,
		Join:       join,
	}
	var err error
	if cfg.Groups, err = parseInts("-groups", groups); err != nil {
		return err
	}
	var rows []bench.ShardRow
	cfg.OnRow = func(r bench.ShardRow) {
		rows = append(rows, r)
		flusher.set(&bench.ShardResult{Config: cfg, Rows: append([]bench.ShardRow(nil), rows...)})
	}
	var joinRows []bench.JoinRow
	cfg.OnJoinRow = func(r bench.JoinRow) {
		joinRows = append(joinRows, r)
		flusher.set(&bench.ShardResult{Config: cfg, JoinRows: append([]bench.JoinRow(nil), joinRows...)})
	}
	res, err := bench.Shard(cfg)
	if err != nil {
		return err
	}
	if err := emitSweep(res, csvPath, asJSON); err != nil {
		return err
	}
	return writeBenchArtifact(benchPath, "shard", res)
}

// runE2E drives the end-to-end scenario harness and, when asked, writes
// or checks the correctness-count envelope. An envelope mismatch is an
// error, so CI fails the build on functional drift in the full pipeline.
func runE2E(scenario string, smoke bool, envelopePath, writeEnvelope, dir string, fsyncBatch int, csvPath, benchPath, tracePath, sched string, asJSON bool, flusher *partialFlusher) error {
	if scenario == "all" {
		scenario = ""
	}
	cfg := bench.E2EConfig{
		Scenarios:  splitModes(scenario),
		Smoke:      smoke,
		Dir:        dir,
		FsyncBatch: fsyncBatch,
		Scheduler:  sched,
	}
	var tracer *metrics.Tracer
	if tracePath != "" {
		tracer = metrics.NewTracer(0)
		cfg.Tracer = tracer
	}
	var rows []bench.E2ERow
	cfg.OnRow = func(r bench.E2ERow) {
		rows = append(rows, r)
		flusher.set(&bench.E2EResult{Config: cfg, Rows: append([]bench.E2ERow(nil), rows...)})
	}
	res, err := bench.E2E(cfg)
	if err != nil {
		return err
	}
	if err := emitSweep(res, csvPath, asJSON); err != nil {
		return err
	}
	if err := writeBenchArtifact(benchPath, "e2e", res); err != nil {
		return err
	}
	if tracePath != "" {
		dump, err := tracer.DumpJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, append(dump, '\n'), 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", tracePath, "(", tracer.Len(), "traces )")
	}
	if writeEnvelope != "" {
		enc, err := json.MarshalIndent(res.Envelope(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(writeEnvelope, append(enc, '\n'), 0o644); err != nil {
			return fmt.Errorf("write envelope: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", writeEnvelope)
	}
	if envelopePath != "" {
		raw, err := os.ReadFile(envelopePath)
		if err != nil {
			return fmt.Errorf("read envelope: %w", err)
		}
		var env bench.Envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			return fmt.Errorf("parse envelope %s: %w", envelopePath, err)
		}
		if err := res.CheckEnvelope(&env); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "envelope check passed:", envelopePath)
	}
	return nil
}

func run(table, figure int, tools, baseline, missrate, all, quick, asJSON bool) error {
	type job struct {
		enabled bool
		run     func() (interface{ Format() string }, error)
	}
	fig9Exp := 5
	baselineSizes := []int{100, 1000, 7473, 10000}
	toolReqs := 100
	missTokens := 2000
	if quick {
		fig9Exp = 3
		baselineSizes = []int{100, 1000}
		toolReqs = 25
		missTokens = 500
	}
	jobs := []job{
		{all || table == 2, func() (interface{ Format() string }, error) { return bench.TableII() }},
		{all || table == 3, func() (interface{ Format() string }, error) { return bench.TableIII() }},
		{all || table == 4, func() (interface{ Format() string }, error) { return bench.TableIV() }},
		{all || figure == 8, func() (interface{ Format() string }, error) { return bench.Figure8() }},
		{all || figure == 9, func() (interface{ Format() string }, error) { return bench.Figure9(fig9Exp) }},
		{all || tools, func() (interface{ Format() string }, error) { return bench.RuntimeTools(toolReqs) }},
		{all || baseline, func() (interface{ Format() string }, error) { return bench.Baseline(baselineSizes) }},
		{all || missrate, func() (interface{ Format() string }, error) {
			return bench.MissRate(missTokens, 35, 60, nil)
		}},
	}
	ran := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		res, err := j.run()
		if err != nil {
			return err
		}
		if asJSON {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(enc))
		} else {
			fmt.Println(res.Format())
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected: table=%d figure=%d", table, figure)
	}
	return nil
}
