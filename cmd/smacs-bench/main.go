// Command smacs-bench regenerates the paper's evaluation tables and
// figures (§ VI) and prints them in the paper's layout.
//
// Usage:
//
//	smacs-bench -all             # everything (Fig. 9 up to 10^5 requests)
//	smacs-bench -all -quick      # everything, smaller workloads
//	smacs-bench -table 2         # Tab. II only (also: 3, 4)
//	smacs-bench -figure 8        # Fig. 8 only (also: 9)
//	smacs-bench -tools           # § VI-B runtime-verification throughput
//	smacs-bench -baseline        # E7 on-chain whitelist baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (2, 3, or 4)")
		figure   = flag.Int("figure", 0, "regenerate one figure (8 or 9)")
		tools    = flag.Bool("tools", false, "regenerate the § VI-B tool measurements")
		baseline = flag.Bool("baseline", false, "run the on-chain whitelist baseline (E7)")
		missrate = flag.Bool("missrate", false, "run the § IV-C bitmap-size vs miss-rate tradeoff")
		all      = flag.Bool("all", false, "regenerate everything")
		quick    = flag.Bool("quick", false, "smaller workloads (Fig. 9 to 10^3, baseline to 1000)")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of the paper-layout tables")
	)
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*tools && !*baseline && !*missrate {
		*all = true
	}
	if err := run(*table, *figure, *tools, *baseline, *missrate, *all, *quick, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "smacs-bench:", err)
		os.Exit(1)
	}
}

func run(table, figure int, tools, baseline, missrate, all, quick, asJSON bool) error {
	type job struct {
		enabled bool
		run     func() (interface{ Format() string }, error)
	}
	fig9Exp := 5
	baselineSizes := []int{100, 1000, 7473, 10000}
	toolReqs := 100
	missTokens := 2000
	if quick {
		fig9Exp = 3
		baselineSizes = []int{100, 1000}
		toolReqs = 25
		missTokens = 500
	}
	jobs := []job{
		{all || table == 2, func() (interface{ Format() string }, error) { return bench.TableII() }},
		{all || table == 3, func() (interface{ Format() string }, error) { return bench.TableIII() }},
		{all || table == 4, func() (interface{ Format() string }, error) { return bench.TableIV() }},
		{all || figure == 8, func() (interface{ Format() string }, error) { return bench.Figure8() }},
		{all || figure == 9, func() (interface{ Format() string }, error) { return bench.Figure9(fig9Exp) }},
		{all || tools, func() (interface{ Format() string }, error) { return bench.RuntimeTools(toolReqs) }},
		{all || baseline, func() (interface{ Format() string }, error) { return bench.Baseline(baselineSizes) }},
		{all || missrate, func() (interface{ Format() string }, error) {
			return bench.MissRate(missTokens, 35, 60, nil)
		}},
	}
	ran := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		res, err := j.run()
		if err != nil {
			return err
		}
		if asJSON {
			enc, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(enc))
		} else {
			fmt.Println(res.Format())
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected: table=%d figure=%d", table, figure)
	}
	return nil
}
