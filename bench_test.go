// Benchmarks regenerating the paper's evaluation (one target per table and
// figure; see DESIGN.md's per-experiment index). Gas figures are attached
// as custom metrics since they are deterministic per operation; wall-clock
// throughput comes from the standard ns/op output.
package smacs_test

import (
	"math/big"
	"testing"

	smacs "repro"
	"repro/internal/bench"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/keccak"
	"repro/internal/rtverify/ecf"
	"repro/internal/rtverify/hydra"
	"repro/internal/rules"
	"repro/internal/secp256k1"
	"repro/internal/ts"
	"repro/internal/types"
	"repro/internal/wallet"
)

// --- Tab. II (E1): single-token processing cost ---

func benchTableII(b *testing.B, tp core.TokenType, oneTime bool) {
	b.Helper()
	res, err := bench.TableII()
	if err != nil {
		b.Fatal(err)
	}
	rows := res.Plain
	if oneTime {
		rows = res.OneTime
	}
	row := rows[tp]
	// Wall-clock per protected call (issue + tx).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ChainRun(1, tp, oneTime); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(row.Verify), "verify-gas")
	b.ReportMetric(float64(row.Total), "total-gas")
	b.ReportMetric(row.USD, "usd")
}

func BenchmarkTableII_Super(b *testing.B)    { benchTableII(b, core.SuperType, false) }
func BenchmarkTableII_Method(b *testing.B)   { benchTableII(b, core.MethodType, false) }
func BenchmarkTableII_Argument(b *testing.B) { benchTableII(b, core.ArgumentType, false) }
func BenchmarkTableII_SuperOneTime(b *testing.B) {
	benchTableII(b, core.SuperType, true)
}
func BenchmarkTableII_ArgumentOneTime(b *testing.B) {
	benchTableII(b, core.ArgumentType, true)
}

// --- Tab. III (E2): call-chain cost for one-time argument tokens ---

func benchChain(b *testing.B, depth int) {
	b.Helper()
	row, err := bench.ChainRun(depth, core.ArgumentType, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ChainRun(depth, core.ArgumentType, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(row.Total), "total-gas")
	b.ReportMetric(float64(row.Verify), "verify-gas")
	b.ReportMetric(float64(row.Parse), "parse-gas")
}

func BenchmarkTableIII_Depth1(b *testing.B) { benchChain(b, 1) }
func BenchmarkTableIII_Depth2(b *testing.B) { benchChain(b, 2) }
func BenchmarkTableIII_Depth3(b *testing.B) { benchChain(b, 3) }
func BenchmarkTableIII_Depth4(b *testing.B) { benchChain(b, 4) }

// --- Tab. IV (E3): bitmap deployment cost ---

func BenchmarkTableIV_BitmapDeploy(b *testing.B) {
	res, err := bench.TableIV()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Rows[0].DeployGas), "deploy-gas-35tps")
	b.ReportMetric(res.Rows[0].USD, "usd-35tps")
}

// --- Fig. 8 (E4): aggregated verification gas ---

func BenchmarkFigure8_Aggregated(b *testing.B) {
	res, err := bench.Figure8()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ChainRun(4, core.ArgumentType, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.TotalGas["super"][3]), "super-4tokens-gas")
	b.ReportMetric(float64(res.TotalGas["argument-onetime"][3]), "argot-4tokens-gas")
}

// --- Fig. 9 (E5): Token Service throughput ---

func newFig9Service(b *testing.B) (*ts.Service, map[string]*core.Request) {
	b.Helper()
	client := types.Address{0xc1}
	target := types.Address{0x01}
	rs := rules.NewRuleSet()
	rs.SetSenderList(rules.NewList(rules.Whitelist, core.ValueKey(client)))
	svc, err := ts.New(ts.Config{Key: secp256k1.PrivateKeyFromSeed([]byte("fig9 bench"))})
	if err != nil {
		b.Fatal(err)
	}
	reqs := map[string]*core.Request{
		"super": {Type: core.SuperType, Contract: target, Sender: client},
		"method": {Type: core.MethodType, Contract: target, Sender: client,
			Method: "act(address,uint256,string)"},
		"argument": {Type: core.ArgumentType, Contract: target, Sender: client,
			Method: "act", Args: []core.NamedArg{
				{Name: "to", Value: types.Address{0xdd}},
				{Name: "amount", Value: uint64(42)},
			}},
	}
	return svc, reqs
}

func benchIssue(b *testing.B, kind string, oneTime bool) {
	svc, reqs := newFig9Service(b)
	req := *reqs[kind]
	req.OneTime = oneTime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Issue(&req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_IssueSuper(b *testing.B)    { benchIssue(b, "super", false) }
func BenchmarkFigure9_IssueMethod(b *testing.B)   { benchIssue(b, "method", false) }
func BenchmarkFigure9_IssueArgument(b *testing.B) { benchIssue(b, "argument", false) }
func BenchmarkFigure9_IssueArgumentOneTime(b *testing.B) {
	benchIssue(b, "argument", true)
}

// --- § VI-B (E6): runtime-verification tools ---

func BenchmarkTools_HydraValidate(b *testing.B) {
	tool, err := hydra.New(
		hydra.Head{Name: "solidity", Build: contracts.NewCalculatorFormula},
		hydra.Head{Name: "vyper", Build: contracts.NewCalculatorLoop},
		hydra.Head{Name: "serpent", Build: contracts.NewCalculatorPairwise},
	)
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Type: core.ArgumentType, Contract: types.Address{1}, Sender: types.Address{0xc1},
		Method: "sumTo", Args: []core.NamedArg{{Name: "n", Value: uint64(1000)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tool.Validate(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTools_ECFValidate(b *testing.B) {
	chain := evm.NewChain(evm.DefaultConfig())
	owner := wallet.FromSeed("ecf bench owner", chain)
	depositor := wallet.FromSeed("ecf bench victim", chain)
	chain.Fund(owner.Address(), smacsEther(1000))
	chain.Fund(depositor.Address(), smacsEther(1000))
	bankAddr, _, err := chain.Deploy(owner.Address(), contracts.NewBank())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := depositor.Call(bankAddr, "addBalance", wallet.CallOpts{Value: smacsEther(10)}); err != nil {
		b.Fatal(err)
	}
	checker := ecf.New(chain, bankAddr)
	req := &core.Request{
		Type: core.ArgumentType, Contract: bankAddr,
		Sender: depositor.Address(), Method: "withdraw",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checker.Validate(req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: on-chain whitelist baseline ---

func BenchmarkBaseline_WhitelistAdd(b *testing.B) {
	chain := evm.NewChain(evm.DefaultConfig())
	owner := wallet.FromSeed("baseline bench", chain)
	chain.Fund(owner.Address(), smacsEther(1_000_000))
	gate, _, err := chain.Deploy(owner.Address(), contracts.NewWhitelistGate(owner.Address()))
	if err != nil {
		b.Fatal(err)
	}
	var gasTotal uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var addr types.Address
		addr[0] = 0xb5
		addr[1] = byte(i >> 16)
		addr[2] = byte(i >> 8)
		addr[3] = byte(i)
		r, err := owner.Call(gate, "add", wallet.CallOpts{}, addr)
		if err != nil {
			b.Fatal(err)
		}
		gasTotal += r.GasUsed
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(gasTotal)/float64(b.N), "gas/add")
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationBitmapVsMap compares the two one-time-token registries:
// the windowed bitmap of Alg. 2 (bounded storage, possible misses) versus
// the naive per-index map § IV-C dismisses (no misses, one storage word per
// token forever). Gas per use and storage words are reported as metrics.
func BenchmarkAblationBitmapVsMap(b *testing.B) {
	type registry struct {
		name  string
		build func() (*evm.Contract, func() int)
	}
	registries := []registry{
		{"bitmap", func() (*evm.Contract, func() int) {
			bm, err := core.NewBitmap(65536, 0)
			if err != nil {
				b.Fatal(err)
			}
			c := evm.NewContract("BitmapReg")
			c.MustAddMethod(evm.Method{
				Name: "use", Params: []any{uint64(0)}, Visibility: evm.Public,
				Handler: func(call *evm.Call) ([]any, error) {
					idx, _ := call.Arg(0).(uint64)
					return nil, bm.Use(call, int64(idx))
				},
			})
			return c, bm.StorageWords
		}},
		{"naive-map", func() (*evm.Contract, func() int) {
			tracker := core.NewNaiveTracker(0)
			c := evm.NewContract("NaiveReg")
			c.MustAddMethod(evm.Method{
				Name: "use", Params: []any{uint64(0)}, Visibility: evm.Public,
				Handler: func(call *evm.Call) ([]any, error) {
					idx, _ := call.Arg(0).(uint64)
					return nil, tracker.Use(call, int64(idx))
				},
			})
			return c, nil
		}},
	}
	for _, reg := range registries {
		b.Run(reg.name, func(b *testing.B) {
			chain := evm.NewChain(evm.DefaultConfig())
			owner := wallet.FromSeed("ablation reg", chain)
			chain.Fund(owner.Address(), smacsEther(1_000_000))
			contract, words := reg.build()
			addr, _, err := chain.Deploy(owner.Address(), contract)
			if err != nil {
				b.Fatal(err)
			}
			var gasTotal uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := owner.Call(addr, "use", wallet.CallOpts{}, uint64(i))
				if err != nil || !r.Status {
					b.Fatalf("use(%d): %v %v", i, err, r.Err)
				}
				gasTotal += r.GasByCategory[gas.CatBitmap]
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(gasTotal)/float64(b.N), "gas/use")
			}
			if words != nil {
				b.ReportMetric(float64(words()), "storage-words")
			} else {
				b.ReportMetric(float64(chain.StorageWordsOf(addr)), "storage-words")
			}
		})
	}
}

// BenchmarkAblationRecoverVsVerify compares the ecrecover idiom (what the
// contract does) against classic verification with a stored public key.
func BenchmarkAblationRecoverVsVerify(b *testing.B) {
	key := secp256k1.PrivateKeyFromSeed([]byte("ablation"))
	digest := keccak.Sum256([]byte("ablation message"))
	sig, err := secp256k1.Sign(key, digest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := secp256k1.RecoverAddress(digest, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !secp256k1.Verify(key.Pub, digest, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkAblationRuleSetSize measures issuance latency against whitelist
// size (the off-chain analogue of the on-chain whitelist cost).
func BenchmarkAblationRuleSetSize(b *testing.B) {
	for _, size := range []int{10, 1000, 100000} {
		b.Run(byteCount(size), func(b *testing.B) {
			client := types.Address{0xc1}
			list := rules.NewList(rules.Whitelist, core.ValueKey(client))
			for i := 0; i < size; i++ {
				list.Add(core.ValueKey(types.Address{0xf0, byte(i >> 16), byte(i >> 8), byte(i)}))
			}
			rs := rules.NewRuleSet()
			rs.SetSenderList(list)
			svc, err := ts.New(ts.Config{
				Key:   secp256k1.PrivateKeyFromSeed([]byte("ablation rules")),
				Rules: rs,
			})
			if err != nil {
				b.Fatal(err)
			}
			req := &core.Request{Type: core.SuperType, Contract: types.Address{1}, Sender: client}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Issue(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteCount(n int) string {
	switch {
	case n >= 1000000:
		return "1M-entries"
	case n >= 100000:
		return "100k-entries"
	case n >= 1000:
		return "1k-entries"
	default:
		return "10-entries"
	}
}

func smacsEther(n int64) *big.Int { return smacs.Ether(n) }
