package smacs_test

import (
	"errors"
	"math/big"
	"testing"
	"time"

	smacs "repro"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/evm"
	"repro/internal/gas"
	"repro/internal/rtverify/ecf"
	"repro/internal/secp256k1"
)

// env is the end-to-end test environment assembled purely through the
// public facade.
type env struct {
	chain   *smacs.Chain
	service *smacs.TokenService
	owner   *smacs.Wallet
	client  *smacs.Wallet
	mallory *smacs.Wallet
	target  smacs.Address
	now     time.Time
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{now: time.Date(2020, 3, 17, 12, 0, 0, 0, time.UTC)}
	cfg := smacs.DefaultChainConfig()
	cfg.Now = func() time.Time { return e.now }
	e.chain = smacs.NewChain(cfg)

	e.owner = smacs.NewWalletFromSeed("e2e owner", e.chain)
	e.client = smacs.NewWalletFromSeed("e2e client", e.chain)
	e.mallory = smacs.NewWalletFromSeed("e2e mallory", e.chain)
	for _, w := range []*smacs.Wallet{e.owner, e.client, e.mallory} {
		e.chain.Fund(w.Address(), smacs.Ether(1000))
	}

	tsKey := smacs.KeyFromSeed("e2e ts key")
	service, err := smacs.NewTokenService(smacs.TokenServiceConfig{
		Key: tsKey,
		Now: cfg.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.service = service

	verifier := smacs.NewVerifier(service.Address())
	bm, err := smacs.NewBitmap(1024, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	verifier.WithBitmap(bm)
	protected := smacs.EnableContract(contracts.NewSimpleStorage(), verifier)
	addr, _, err := e.chain.Deploy(e.owner.Address(), protected)
	if err != nil {
		t.Fatal(err)
	}
	e.target = addr
	return e
}

func (e *env) superToken(t *testing.T, who *smacs.Wallet, oneTime bool) smacs.CallOpts {
	t.Helper()
	tk, err := e.service.Issue(&smacs.TokenRequest{
		Type:     smacs.SuperToken,
		Contract: e.target,
		Sender:   who.Address(),
		OneTime:  oneTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	return smacs.WithTokens(smacs.TokenEntry{Contract: e.target, Token: tk})
}

func TestEndToEndLifecycle(t *testing.T) {
	e := newEnv(t)
	opts := e.superToken(t, e.client, false)

	r, err := e.client.Call(e.target, "set", opts, uint64(99))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Status {
		t.Fatalf("protected set reverted: %v", r.Err)
	}
	r, err = e.client.Call(e.target, "get", opts)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Return[0].(uint64); v != 99 {
		t.Errorf("get = %d, want 99", v)
	}
	// The receipt carries the paper's cost breakdown.
	if r.GasByCategory[gas.CatVerify] == 0 {
		t.Error("no verification gas recorded")
	}
}

func TestSecuritySubstitution(t *testing.T) {
	// § VII-A(a): an intercepted token is useless from another account.
	e := newEnv(t)
	stolen := e.superToken(t, e.client, false)
	r, err := e.mallory.Call(e.target, "set", stolen, uint64(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrBadTokenSig) {
		t.Errorf("substitution: status=%v err=%v", r.Status, r.Err)
	}
}

func TestSecurityForgedToken(t *testing.T) {
	// An adversary without skTS cannot mint valid tokens.
	e := newEnv(t)
	rogue := secp256k1.PrivateKeyFromSeed([]byte("rogue key"))
	forged, err := core.SignToken(rogue, smacs.SuperToken, e.now.Add(time.Hour),
		smacs.NotOneTime, smacs.Binding{Origin: e.mallory.Address(), Contract: e.target})
	if err != nil {
		t.Fatal(err)
	}
	opts := smacs.WithTokens(smacs.TokenEntry{Contract: e.target, Token: forged})
	r, err := e.mallory.Call(e.target, "set", opts, uint64(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrBadTokenSig) {
		t.Errorf("forged token: status=%v err=%v", r.Status, r.Err)
	}
}

func TestSecurityTransactionReplay(t *testing.T) {
	// § VII-A(b): Ethereum's nonce blocks byte-identical replays, and the
	// bitmap blocks re-embedding a used one-time token in a new tx.
	e := newEnv(t)
	opts := e.superToken(t, e.client, true)

	tx, err := e.client.BuildTx(e.target, "set", opts, uint64(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.chain.Apply(tx); err != nil {
		t.Fatal(err)
	}
	// Replaying the identical transaction fails on the nonce.
	if _, err := e.chain.Apply(tx); !errors.Is(err, evm.ErrNonceTooLow) {
		t.Errorf("replay err = %v, want ErrNonceTooLow", err)
	}
	// A fresh transaction reusing the one-time token fails on the bitmap.
	r, err := e.client.Call(e.target, "set", opts, uint64(6))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrTokenUsed) {
		t.Errorf("token reuse: status=%v err=%v", r.Status, r.Err)
	}
}

func TestSecurity51PercentReorg(t *testing.T) {
	// § VII-A(c): a majority adversary can rewrite history (erase the
	// client's transaction) but still cannot craft a valid token for a
	// non-compliant transaction.
	e := newEnv(t)
	opts := e.superToken(t, e.client, false)
	height := e.chain.Height()

	r, err := e.client.Call(e.target, "set", opts, uint64(7))
	if err != nil || !r.Status {
		t.Fatalf("legitimate call failed: %v %v", err, r)
	}

	// The adversary rewrites history.
	if err := e.chain.Reorg(height); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.chain.StaticCall(e.client.Address(), e.target, "get", nil, opts.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	if v := got[0].(uint64); v != 0 {
		t.Fatalf("reorg did not erase the write: %d", v)
	}

	// Even controlling history, Mallory cannot bypass the access control:
	// the stolen token still fails, and a forged one still fails.
	stolen := opts
	rr, err := e.mallory.Call(e.target, "set", stolen, uint64(666))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status {
		t.Error("majority adversary bypassed SMACS with a stolen token")
	}
	// The legitimate client can simply re-submit.
	rr, err = e.client.Call(e.target, "set", opts, uint64(7))
	if err != nil || !rr.Status {
		t.Fatalf("client resubmission failed: %v %v", err, rr)
	}
}

func TestDynamicRuleUpdateBlocksClient(t *testing.T) {
	// Examples 1-2: the owner flips the client from allowed to blocked
	// without touching the deployed contract.
	e := newEnv(t)
	ruleSet := smacs.NewRuleSet()
	ruleSet.SetSenderList(smacs.NewWhitelist(smacs.ValueKey(e.client.Address())))
	e.service.ReplaceRules(ruleSet)

	if _, err := e.service.Issue(&smacs.TokenRequest{
		Type: smacs.SuperToken, Contract: e.target, Sender: e.client.Address(),
	}); err != nil {
		t.Fatalf("whitelisted client denied: %v", err)
	}
	ruleSet.RemoveSender(smacs.ValueKey(e.client.Address()))
	if _, err := e.service.Issue(&smacs.TokenRequest{
		Type: smacs.SuperToken, Contract: e.target, Sender: e.client.Address(),
	}); err == nil {
		t.Fatal("removed client still obtains tokens")
	}
}

func TestECFBackedServiceBlocksFig7Attack(t *testing.T) {
	// The § V-B end-to-end story through the facade: a TS with the ECF
	// checker denies the attacker's withdraw token but serves the victim.
	e := newEnv(t)

	// Mirror testnet with the legacy bank, the victim's deposit, and the
	// attacker's (publicly visible) contract.
	mirror := smacs.NewChain(smacs.DefaultChainConfig())
	mOwner := smacs.NewWalletFromSeed("mirror owner", mirror)
	mVictim := smacs.NewWalletFromSeed("mirror victim", mirror)
	mAttacker := smacs.NewWalletFromSeed("mirror attacker", mirror)
	for _, w := range []*smacs.Wallet{mOwner, mVictim, mAttacker} {
		mirror.Fund(w.Address(), smacs.Ether(100))
	}
	bankAddr, _, err := mirror.Deploy(mOwner.Address(), contracts.NewBank())
	if err != nil {
		t.Fatal(err)
	}
	attackerAddr, _, err := mirror.Deploy(mAttacker.Address(), contracts.NewAttacker(bankAddr, true))
	if err != nil {
		t.Fatal(err)
	}
	if r, err := mVictim.Call(bankAddr, "addBalance", smacs.CallOpts{Value: big.NewInt(1e18)}); err != nil || !r.Status {
		t.Fatalf("mirror deposit: %v %v", err, r)
	}
	if r, err := mAttacker.Call(attackerAddr, "deposit", smacs.CallOpts{Value: big.NewInt(2e17)}); err != nil || !r.Status {
		t.Fatalf("mirror attacker deposit: %v %v", err, r)
	}

	e.service.AddValidator(ecf.New(mirror, bankAddr))

	victimReq := &smacs.TokenRequest{
		Type: smacs.ArgumentToken, Contract: bankAddr,
		Sender: mVictim.Address(), Method: "withdraw",
	}
	if _, err := e.service.Issue(victimReq); err != nil {
		t.Errorf("victim denied a withdraw token: %v", err)
	}

	attackerReq := &smacs.TokenRequest{
		Type: smacs.ArgumentToken, Contract: bankAddr,
		Sender: mAttacker.Address(), Method: "withdraw",
	}
	if _, err := e.service.Issue(attackerReq); err == nil {
		t.Error("attacker obtained a withdraw token despite the ECF rule")
	}
}

func TestExpiryThroughFacade(t *testing.T) {
	e := newEnv(t)
	opts := e.superToken(t, e.client, false)
	e.now = e.now.Add(2 * time.Hour) // past the 1h default lifetime
	r, err := e.client.Call(e.target, "set", opts, uint64(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status || !errors.Is(r.Err, core.ErrTokenExpired) {
		t.Errorf("expired: status=%v err=%v", r.Status, r.Err)
	}
}

func TestServiceDiscoveryMetadata(t *testing.T) {
	// § VII-B(b): the TS URL rides as contract metadata.
	e := newEnv(t)
	c, ok := e.chain.ContractAt(e.target)
	if !ok {
		t.Fatal("target contract missing")
	}
	c.SetMetadata("smacs.ts", "http://127.0.0.1:8546")
	url, ok := c.Metadata("smacs.ts")
	if !ok || url != "http://127.0.0.1:8546" {
		t.Errorf("discovery metadata = %q, %v", url, ok)
	}
}
